//! Edge-list input/output in the SNAP text format.
//!
//! The paper's datasets are distributed by SNAP as whitespace-separated edge lists with `#`
//! comment lines. This module parses that format (remapping arbitrary node identifiers to the
//! dense `0..n` range the rest of the workspace expects) and writes graphs back out in the same
//! format, so users can run the estimators on the real SNAP files if they have them locally.

use crate::graph::{Graph, GraphBuilder};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::io::BufRead;
use std::path::Path;

/// Errors arising while reading an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number and its content.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// The offending line content.
        content: String,
    },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "I/O error reading edge list: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(f, "cannot parse edge list line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Parses a SNAP-style edge list from a string.
///
/// * Lines starting with `#` (after leading whitespace) and blank lines are ignored.
/// * Each remaining line must contain at least two whitespace-separated integer tokens; extra
///   tokens (e.g. weights or timestamps) are ignored.
/// * Node identifiers are remapped to `0..n` in order of first appearance.
/// * Self-loops and duplicate/reversed edges are cleaned by [`GraphBuilder`].
pub fn parse_edge_list(text: &str) -> Result<Graph, EdgeListError> {
    parse_edge_list_reader(text.as_bytes())
}

/// Streaming variant of [`parse_edge_list`]: consumes any [`BufRead`] line by line, so a
/// multi-gigabyte SNAP file (or an HTTP request body) is parsed without ever holding the whole
/// text in memory — only the remapping table and the edge list are retained.
pub fn parse_edge_list_reader<R: BufRead>(reader: R) -> Result<Graph, EdgeListError> {
    let mut ids: HashMap<u64, u32> = HashMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, raw) in reader.lines().enumerate() {
        let raw = raw?;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let parse_err = || EdgeListError::Parse { line: idx + 1, content: raw.to_string() };
        let a: u64 = tokens.next().ok_or_else(parse_err)?.parse().map_err(|_| parse_err())?;
        let b: u64 = tokens.next().ok_or_else(parse_err)?.parse().map_err(|_| parse_err())?;
        let next_id = ids.len() as u32;
        let ua = *ids.entry(a).or_insert(next_id);
        let next_id = ids.len() as u32;
        let ub = *ids.entry(b).or_insert(next_id);
        edges.push((ua, ub));
    }
    let n = ids.len();
    let mut builder = GraphBuilder::new(n);
    for (u, v) in edges {
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

/// Reads and parses an edge-list file, streaming it through a [`io::BufReader`] instead of
/// loading the whole file into memory first.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<Graph, EdgeListError> {
    let file = fs::File::open(path)?;
    parse_edge_list_reader(io::BufReader::new(file))
}

/// Serialises a graph as a SNAP-style edge list (one `u\tv` line per undirected edge, preceded
/// by a comment header with the node and edge counts).
pub fn to_edge_list_string(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Undirected graph: {} nodes, {} edges", g.node_count(), g.edge_count());
    let _ = writeln!(out, "# FromNodeId\tToNodeId");
    for &(u, v) in g.edges() {
        let _ = writeln!(out, "{u}\t{v}");
    }
    out
}

/// Writes a graph to a file in the SNAP edge-list format.
pub fn write_edge_list(g: &Graph, path: impl AsRef<Path>) -> Result<(), io::Error> {
    fs::write(path, to_edge_list_string(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rand_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parses_simple_edge_list() {
        let g = parse_edge_list("0 1\n1 2\n2 0\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\n  # another comment\n5 7\n7 9\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn remaps_sparse_node_identifiers() {
        let g = parse_edge_list("1000000 2000000\n2000000 3000000\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn ignores_extra_columns() {
        let g = parse_edge_list("0 1 0.5 2009\n1 2 1.2 2010\n").unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn deduplicates_reverse_edges_and_loops() {
        let g = parse_edge_list("0 1\n1 0\n2 2\n").unwrap();
        assert_eq!(g.edge_count(), 1);
        // Node 2 exists (it appeared) but has no edges.
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn reports_parse_error_with_line_number() {
        let err = parse_edge_list("0 1\nnot-a-node 3\n").unwrap_err();
        match err {
            EdgeListError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reports_missing_second_token() {
        let err = parse_edge_list("42\n").unwrap_err();
        assert!(matches!(err, EdgeListError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = parse_edge_list("# nothing here\n").unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn round_trips_through_string_serialisation() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (3, 4), (0, 4)]);
        let text = to_edge_list_string(&g);
        let parsed = parse_edge_list(&text).unwrap();
        // Node ids are remapped by first appearance, so compare invariants rather than equality.
        assert_eq!(parsed.edge_count(), g.edge_count());
        let mut a = g.degrees();
        let mut b = parsed.degrees();
        a.sort_unstable();
        b.sort_unstable();
        // The isolated-node caveat: nodes with no edges never appear in the output.
        assert_eq!(a.iter().filter(|&&d| d > 0).count(), b.len());
        assert_eq!(a.into_iter().filter(|&d| d > 0).collect::<Vec<_>>(), b);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("kronpriv-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(back.edge_count(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streaming_reader_matches_in_memory_parse() {
        let text = "# header\n10 20\r\n20 30\n30 10\n";
        let in_memory = parse_edge_list(text).unwrap();
        // A 4-byte buffer forces many refills, exercising the incremental line assembly.
        let streamed =
            parse_edge_list_reader(io::BufReader::with_capacity(4, text.as_bytes())).unwrap();
        assert_eq!(in_memory, streamed);
        assert_eq!(streamed.edge_count(), 3);
    }

    #[test]
    fn streaming_reader_reports_line_numbers_and_io_errors() {
        let err = parse_edge_list_reader("0 1\nbroken line\n".as_bytes()).unwrap_err();
        assert!(matches!(err, EdgeListError::Parse { line: 2, .. }));
        // Invalid UTF-8 surfaces as the underlying I/O error, not a panic.
        let err = parse_edge_list_reader(&[0x30, 0x20, 0x31, 0x0A, 0xFF, 0xFE][..]).unwrap_err();
        assert!(matches!(err, EdgeListError::Io(_)));
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err = read_edge_list("/definitely/not/a/real/path.txt").unwrap_err();
        assert!(matches!(err, EdgeListError::Io(_)));
        // Display implementations should be non-empty and mention the failure.
        assert!(format!("{err}").contains("I/O"));
    }

    // Former proptest property, now a deterministic seeded loop.
    #[test]
    fn serialisation_round_trip_preserves_edge_count() {
        let mut rng = StdRng::seed_from_u64(0x10_7001);
        for _ in 0..128 {
            let edges = rand_edges(&mut rng, 20, 80);
            let g = Graph::from_edges(20, edges);
            let parsed = parse_edge_list(&to_edge_list_string(&g)).unwrap();
            assert_eq!(parsed.edge_count(), g.edge_count());
        }
    }
}
