//! Random-graph generators.
//!
//! These serve two purposes in the reproduction:
//!
//! * **Baselines / sanity models** — Erdős–Rényi graphs are the model in which Nissim et al.
//!   analyse the smooth sensitivity of the triangle count, so the ablation experiments compare
//!   the SKG behaviour against `G(n, p)`.
//! * **Dataset stand-ins** — the SNAP datasets used in the paper are not redistributable inside
//!   this repository, so `kronpriv-datasets` composes these generators (mainly the
//!   preferential-attachment and Chung–Lu models, which produce the heavy-tailed degree
//!   distributions the paper's networks have) with the SKG sampler to build statistically
//!   similar substitutes. The substitution rationale lives in `DESIGN.md`.

use crate::graph::{Graph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples an Erdős–Rényi graph `G(n, p)`: every unordered pair becomes an edge independently
/// with probability `p`.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut builder = GraphBuilder::new(n);
    if p > 0.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen::<f64>() < p {
                    builder.add_edge(u, v);
                }
            }
        }
    }
    builder.build()
}

/// Samples an Erdős–Rényi graph `G(n, m)` with exactly `m` distinct edges chosen uniformly at
/// random (or all possible edges if `m` exceeds `C(n, 2)`).
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max_edges = n * n.saturating_sub(1) / 2;
    let m = m.min(max_edges);
    let mut builder = GraphBuilder::new(n);
    while builder.edge_count() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// Samples a Barabási–Albert style preferential-attachment graph: nodes arrive one at a time and
/// attach `edges_per_node` edges to existing nodes chosen with probability proportional to their
/// current degree. Produces the heavy-tailed degree distributions typical of the co-authorship
/// and autonomous-system networks in the paper's evaluation.
///
/// # Panics
/// Panics if `edges_per_node == 0` or `n < 2`.
pub fn preferential_attachment<R: Rng + ?Sized>(
    n: usize,
    edges_per_node: usize,
    rng: &mut R,
) -> Graph {
    assert!(edges_per_node > 0, "edges_per_node must be positive");
    assert!(n >= 2, "need at least two nodes");
    let mut builder = GraphBuilder::new(n);
    // Repeated-endpoint list: node u appears once per incident edge endpoint, which makes
    // degree-proportional sampling a uniform draw from the list.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * edges_per_node);
    builder.add_edge(0, 1);
    endpoints.push(0);
    endpoints.push(1);
    for u in 2..n as u32 {
        let attach = edges_per_node.min(u as usize);
        let mut chosen: Vec<u32> = Vec::with_capacity(attach);
        while chosen.len() < attach {
            let target = *endpoints.choose(rng).expect("endpoint list is never empty");
            if target != u && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &v in &chosen {
            builder.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    builder.build()
}

/// Samples a Chung–Lu random graph with the given expected degree sequence `w`: the edge
/// `{u, v}` is present independently with probability `min(1, w_u w_v / Σ w)`.
///
/// This generator reproduces an arbitrary target degree profile in expectation, which is how the
/// dataset stand-ins match the published degree statistics of the original SNAP networks.
pub fn chung_lu<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Graph {
    let n = weights.len();
    let total: f64 = weights.iter().sum();
    let mut builder = GraphBuilder::new(n);
    if total <= 0.0 {
        return builder.build();
    }
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let p = (weights[u as usize] * weights[v as usize] / total).min(1.0);
            if p > 0.0 && rng.gen::<f64>() < p {
                builder.add_edge(u, v);
            }
        }
    }
    builder.build()
}

/// Deterministic ring lattice where every node connects to its `k` nearest neighbours on each
/// side — the starting point of a Watts–Strogatz construction and a useful high-clustering test
/// fixture.
pub fn ring_lattice(n: usize, k: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for step in 1..=k as u32 {
            let v = (u + step) % n as u32;
            if u != v {
                builder.add_edge(u, v);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_with_zero_probability_is_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_gnp(20, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn gnp_with_probability_one_is_complete() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi_gnp(10, 1.0, &mut rng);
        assert_eq!(g.edge_count(), 45);
    }

    #[test]
    fn gnp_edge_count_is_near_expectation() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let observed = g.edge_count() as f64;
        // 5 standard deviations of slack.
        let sd = (expected * (1.0 - p)).sqrt();
        assert!((observed - expected).abs() < 5.0 * sd, "observed {observed}, expected {expected}");
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn gnp_rejects_invalid_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = erdos_renyi_gnp(5, 1.5, &mut rng);
    }

    #[test]
    fn gnm_produces_exactly_m_edges() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi_gnm(50, 100, &mut rng);
        assert_eq!(g.edge_count(), 100);
        assert_eq!(g.node_count(), 50);
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = erdos_renyi_gnm(5, 1000, &mut rng);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn preferential_attachment_has_expected_edge_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 300;
        let m = 3;
        let g = preferential_attachment(n, m, &mut rng);
        assert_eq!(g.node_count(), n);
        // 1 seed edge + ~m per subsequent node (first few nodes attach fewer).
        assert!(g.edge_count() > (n - 10) * m / 2);
        assert!(g.edge_count() <= 1 + (n - 2) * m);
    }

    #[test]
    fn preferential_attachment_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = preferential_attachment(500, 2, &mut rng);
        let max_d = g.max_degree() as f64;
        let avg_d = g.average_degree();
        // Hubs should be far above the average degree; a loose but meaningful check.
        assert!(max_d > 5.0 * avg_d, "max {max_d} avg {avg_d}");
    }

    #[test]
    fn preferential_attachment_is_connected() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = preferential_attachment(100, 2, &mut rng);
        assert_eq!(crate::traversal::component_count(&g), 1);
    }

    #[test]
    fn chung_lu_matches_expected_degrees_roughly() {
        let mut rng = StdRng::seed_from_u64(10);
        let weights = vec![20.0; 200];
        let g = chung_lu(&weights, &mut rng);
        let avg = g.average_degree();
        // Expected degree of every node is ~20 (self-pair excluded), so the average should be
        // within a few units.
        assert!((avg - 20.0).abs() < 3.0, "avg degree {avg}");
    }

    #[test]
    fn chung_lu_with_zero_weights_is_empty() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = chung_lu(&[0.0; 10], &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn ring_lattice_is_regular() {
        let g = ring_lattice(12, 2);
        assert!(g.degrees().iter().all(|&d| d == 4));
        assert_eq!(g.edge_count(), 24);
    }

    #[test]
    fn ring_lattice_with_k1_is_a_cycle() {
        let g = ring_lattice(8, 1);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(crate::traversal::effective_diameter_exact(&g), 4);
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let g1 = erdos_renyi_gnp(40, 0.1, &mut StdRng::seed_from_u64(42));
        let g2 = erdos_renyi_gnp(40, 0.1, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1, g2);
        let p1 = preferential_attachment(60, 2, &mut StdRng::seed_from_u64(7));
        let p2 = preferential_attachment(60, 2, &mut StdRng::seed_from_u64(7));
        assert_eq!(p1, p2);
    }
}
