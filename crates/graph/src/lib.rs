//! `kronpriv-graph` — the graph substrate for the `kronpriv` workspace.
//!
//! The paper treats an observed network as a simple, undirected, unweighted graph (Section 3.2:
//! self-loops removed, adjacency symmetrised). This crate provides:
//!
//! * [`Graph`]: an immutable simple undirected graph stored as sorted adjacency lists (CSR),
//!   built through [`GraphBuilder`] which performs the paper's cleaning steps,
//! * [`counts`]: the four matching statistics the Gleich–Owen estimator equates
//!   (edges `E`, hairpins/wedges `H`, tripins/3-stars `T`, triangles `Δ`), per-node triangle
//!   counts, and common-neighbour queries needed by the smooth-sensitivity computation,
//! * [`traversal`]: BFS distances, connected components and reachable-pair counting used for the
//!   hop plot,
//! * [`generators`]: Erdős–Rényi, preferential-attachment and Chung–Lu random graphs used as
//!   baselines and as synthetic stand-ins for unavailable datasets,
//! * [`io`]: SNAP-style edge-list parsing and writing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counts;
pub mod generators;
pub mod graph;
pub mod io;
pub mod traversal;

pub use counts::MatchingStatistics;
pub use graph::{Graph, GraphBuilder};

#[cfg(test)]
pub(crate) mod test_support {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Draws a random multigraph edge list (with possible duplicates and self-loops) on `n`
    /// nodes — the adversarial input shape shared by this crate's seeded property tests.
    pub(crate) fn rand_edges(rng: &mut StdRng, n: u32, max_len: usize) -> Vec<(u32, u32)> {
        let len = rng.gen_range(0..max_len);
        (0..len).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect()
    }
}
