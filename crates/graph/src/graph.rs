//! The simple undirected graph type and its builder.
//!
//! Section 3.2 of the paper defines how a (possibly directed, possibly loopy) realization of a
//! stochastic Kronecker matrix is turned into the undirected simple graph that is actually
//! modelled: self-loops are dropped and the adjacency is symmetrised. [`GraphBuilder`] performs
//! exactly those cleaning steps for arbitrary edge input, so every graph in the workspace is a
//! simple undirected graph by construction.

use std::collections::BTreeSet;

/// An immutable simple undirected graph.
///
/// Nodes are `0..node_count()`. Neighbour lists are sorted, contain no duplicates and no
/// self-loops. Each undirected edge `{u, v}` is stored once in [`Graph::edges`] (with `u < v`)
/// and appears in both adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets into `adjacency`, length `node_count() + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour lists.
    adjacency: Vec<u32>,
    /// Canonical edge list with `u < v`.
    edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Creates an empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph { offsets: vec![0; n + 1], adjacency: Vec::new(), edges: Vec::new() }
    }

    /// Builds a graph directly from an iterator of undirected edges. Self-loops and duplicates
    /// are discarded; node count is `n`.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut builder = GraphBuilder::new(n);
        for (u, v) in edges {
            builder.add_edge(u, v);
        }
        builder.build()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The canonical edge list (each edge once, endpoints ordered `u < v`).
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Sorted neighbour list of `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let u = u as usize;
        &self.adjacency[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: u32) -> usize {
        self.neighbors(u).len()
    }

    /// Degree of every node, indexed by node id.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.node_count() as u32).map(|u| self.degree(u)).collect()
    }

    /// Whether the undirected edge `{u, v}` is present.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u as usize >= self.node_count() || v as usize >= self.node_count() {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count() as u32).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Average degree `2E / N` (0.0 for a graph with no nodes).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.node_count() as f64
        }
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = u32> {
        0..self.node_count() as u32
    }

    /// Returns the subgraph induced on `nodes` (relabelled `0..nodes.len()` in the given order),
    /// together with the mapping from new ids to old ids.
    pub fn induced_subgraph(&self, nodes: &[u32]) -> (Graph, Vec<u32>) {
        let mut new_id = vec![u32::MAX; self.node_count()];
        for (new, &old) in nodes.iter().enumerate() {
            new_id[old as usize] = new as u32;
        }
        let mut builder = GraphBuilder::new(nodes.len());
        for &(u, v) in &self.edges {
            let (nu, nv) = (new_id[u as usize], new_id[v as usize]);
            if nu != u32::MAX && nv != u32::MAX {
                builder.add_edge(nu, nv);
            }
        }
        (builder.build(), nodes.to_vec())
    }

    /// Returns a copy of the graph with the undirected edge `{u, v}` added (no-op if present or
    /// if `u == v`). Used by sensitivity analyses that explore edge-neighbouring graphs
    /// (Definition 4.1).
    pub fn with_edge_added(&self, u: u32, v: u32) -> Graph {
        let mut edges = self.edges.clone();
        edges.push((u.min(v), u.max(v)));
        Graph::from_edges(self.node_count(), edges)
    }

    /// Returns a copy of the graph with the undirected edge `{u, v}` removed (no-op if absent).
    pub fn with_edge_removed(&self, u: u32, v: u32) -> Graph {
        let key = (u.min(v), u.max(v));
        let edges: Vec<(u32, u32)> = self.edges.iter().copied().filter(|&e| e != key).collect();
        Graph::from_edges(self.node_count(), edges)
    }
}

/// Accumulates edges and produces a cleaned [`Graph`].
///
/// Cleaning mirrors Section 3.2 of the paper: direction is ignored, self-loops are dropped, and
/// parallel edges collapse to one.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: BTreeSet::new() }
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are silently ignored. Returns `true` iff
    /// the edge was new (not a self-loop and not already present), so samplers that count
    /// distinct edges can use the builder as their only store instead of keeping a parallel
    /// dedup set.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of bounds for {} nodes",
            self.n
        );
        if u == v {
            return false;
        }
        self.edges.insert((u.min(v), u.max(v)))
    }

    /// Number of distinct undirected edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let edges: Vec<(u32, u32)> = self.edges.into_iter().collect();
        let mut degree = vec![0usize; self.n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0usize; self.n + 1];
        for i in 0..self.n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut adjacency = vec![0u32; offsets[self.n]];
        let mut cursor = offsets.clone();
        for &(u, v) in &edges {
            adjacency[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        for i in 0..self.n {
            adjacency[offsets[i]..offsets[i + 1]].sort_unstable();
        }
        Graph { offsets, adjacency, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rand_edges;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 2-0 triangle with a tail 2-3.
        Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(g.neighbors(3).is_empty());
    }

    #[test]
    fn node_and_edge_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn neighbors_are_sorted_and_symmetric() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbors(3), &[2]);
        for &(u, v) in g.edges() {
            assert!(g.has_edge(u, v));
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn self_loops_are_dropped() {
        let g = Graph::from_edges(3, vec![(0, 0), (1, 1), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn duplicate_and_reversed_edges_collapse() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 0), (0, 1), (2, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn degrees_match_adjacency() {
        let g = triangle_plus_tail();
        assert_eq!(g.degrees(), vec![2, 2, 3, 1]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn has_edge_is_false_for_out_of_range_nodes() {
        let g = triangle_plus_tail();
        assert!(!g.has_edge(0, 17));
        assert!(!g.has_edge(17, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn builder_rejects_out_of_range_edge() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn add_edge_reports_whether_the_edge_was_new() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(0, 1), "first insertion is new");
        assert!(!b.add_edge(1, 0), "reversed duplicate is not");
        assert!(!b.add_edge(0, 1), "exact duplicate is not");
        assert!(!b.add_edge(2, 2), "self-loop is dropped");
        assert!(b.add_edge(1, 2));
        assert_eq!(b.edge_count(), 2);
    }

    #[test]
    fn edges_are_canonical_and_unique() {
        let g = triangle_plus_tail();
        for &(u, v) in g.edges() {
            assert!(u < v);
        }
        let set: BTreeSet<_> = g.edges().iter().collect();
        assert_eq!(set.len(), g.edge_count());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = triangle_plus_tail();
        let (sub, map) = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 3);
        assert_eq!(map, vec![0, 1, 2]);
        let (sub2, _) = g.induced_subgraph(&[2, 3]);
        assert_eq!(sub2.edge_count(), 1);
    }

    #[test]
    fn with_edge_added_and_removed_are_inverse_operations() {
        let g = triangle_plus_tail();
        let g2 = g.with_edge_added(0, 3);
        assert_eq!(g2.edge_count(), g.edge_count() + 1);
        assert!(g2.has_edge(0, 3));
        let g3 = g2.with_edge_removed(3, 0);
        assert_eq!(g3, g);
    }

    #[test]
    fn with_edge_added_is_noop_for_existing_edge_or_loop() {
        let g = triangle_plus_tail();
        assert_eq!(g.with_edge_added(0, 1), g);
        assert_eq!(g.with_edge_added(2, 2), g);
    }

    #[test]
    fn sum_of_degrees_is_twice_edges() {
        let g = triangle_plus_tail();
        let sum: usize = g.degrees().iter().sum();
        assert_eq!(sum, 2 * g.edge_count());
    }

    // Former proptest properties, now deterministic seeded loops.
    #[test]
    fn builder_always_produces_simple_symmetric_graph() {
        let mut rng = StdRng::seed_from_u64(0x62_7001);
        for _ in 0..128 {
            let edges = rand_edges(&mut rng, 30, 200);
            let g = Graph::from_edges(30, edges);
            // No self loops, all neighbour lists sorted and duplicate-free, symmetry holds.
            for u in g.nodes() {
                let nbrs = g.neighbors(u);
                assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
                assert!(!nbrs.contains(&u));
                for &v in nbrs {
                    assert!(g.neighbors(v).contains(&u));
                }
            }
            let degree_sum: usize = g.degrees().iter().sum();
            assert_eq!(degree_sum, 2 * g.edge_count());
        }
    }

    #[test]
    fn edge_addition_increases_count_by_at_most_one() {
        let mut rng = StdRng::seed_from_u64(0x62_7002);
        for _ in 0..128 {
            let edges = rand_edges(&mut rng, 15, 60);
            let extra = (rng.gen_range(0..15u32), rng.gen_range(0..15u32));
            let g = Graph::from_edges(15, edges);
            let g2 = g.with_edge_added(extra.0, extra.1);
            assert!(g2.edge_count() >= g.edge_count());
            assert!(g2.edge_count() <= g.edge_count() + 1);
        }
    }
}
