//! The subgraph counts matched by the moment-based estimator.
//!
//! Gleich & Owen's estimator (and therefore the paper's private estimator) matches four observed
//! statistics of the graph against their expectations under the stochastic Kronecker model
//! (Section 3.4):
//!
//! * `E` — the number of edges,
//! * `H` — the number of *hairpins* (2-stars / wedges): unordered pairs of distinct edges
//!   sharing an endpoint, `Σ_i C(d_i, 2)`,
//! * `T` — the number of *tripins* (3-stars): `Σ_i C(d_i, 3)`,
//! * `Δ` — the number of triangles.
//!
//! `E`, `H` and `T` are functions of the degree sequence, which is why the paper can derive
//! their private approximations from a private degree sequence (Fact 4.6). The triangle count is
//! not, which is why it gets the smooth-sensitivity treatment; the per-pair common-neighbour
//! counts exposed here are exactly what that computation needs.

use crate::graph::Graph;
use kronpriv_json::impl_json_struct;
use kronpriv_par::{Executor, Work};

/// Edges per work chunk for the edge-partitioned kernels. Fixed (never derived from the thread
/// count) so chunk boundaries — and therefore results — are identical for any [`Executor`];
/// sized so one chunk (~a thousand sorted-list intersections) amortizes a pool handoff.
const EDGE_CHUNK: usize = 1024;

/// Cost hint for the edge-partitioned triangle kernels: one sorted-neighbour intersection per
/// edge, a short data-dependent scan.
const EDGE_WORK: Work = Work::MODERATE;

/// The four observed statistics `(E, H, T, Δ)` used for moment matching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchingStatistics {
    /// Number of undirected edges.
    pub edges: f64,
    /// Number of hairpins (wedges / 2-stars).
    pub hairpins: f64,
    /// Number of tripins (3-stars).
    pub tripins: f64,
    /// Number of triangles.
    pub triangles: f64,
}

impl_json_struct!(MatchingStatistics { edges, hairpins, tripins, triangles });

impl MatchingStatistics {
    /// Computes all four statistics of `g` exactly.
    pub fn of_graph(g: &Graph) -> Self {
        let degrees = g.degrees();
        MatchingStatistics {
            edges: g.edge_count() as f64,
            hairpins: hairpin_count(&degrees),
            tripins: tripin_count(&degrees),
            triangles: triangle_count(g) as f64,
        }
    }

    /// Derives the three degree-based statistics `(E, H, T)` from a (possibly noisy, possibly
    /// non-integral) degree sequence, exactly as the paper does from the private degree sequence:
    /// `E = ½ Σ d_i`, `H = ½ Σ d_i (d_i − 1)`, `T = ⅙ Σ d_i (d_i − 1)(d_i − 2)`.
    ///
    /// The triangle count cannot be derived from degrees; the caller must supply it (here it is
    /// set to `triangles`).
    pub fn from_degree_sequence(degrees: &[f64], triangles: f64) -> Self {
        let edges = 0.5 * degrees.iter().sum::<f64>();
        let hairpins = 0.5 * degrees.iter().map(|d| d * (d - 1.0)).sum::<f64>();
        let tripins = degrees.iter().map(|d| d * (d - 1.0) * (d - 2.0)).sum::<f64>() / 6.0;
        MatchingStatistics { edges, hairpins, tripins, triangles }
    }

    /// Returns the statistics as an `[E, H, Δ, T]` array (the order used by the fitting code).
    pub fn as_array(&self) -> [f64; 4] {
        [self.edges, self.hairpins, self.triangles, self.tripins]
    }
}

/// Number of hairpins (wedges) from a degree sequence: `Σ C(d_i, 2)`.
///
/// Each term is accumulated in `f64` from the start: the integer product `d·(d−1)` overflows
/// `usize` for hub degrees ≳ 2³² on 64-bit targets and already at `d ≈ 65'000` on 32-bit ones,
/// whereas `f64` represents the binomials of any realistic degree to full relative precision.
pub fn hairpin_count(degrees: &[usize]) -> f64 {
    degrees
        .iter()
        .map(|&d| {
            let d = d as f64;
            d * (d - 1.0) / 2.0
        })
        .sum()
}

/// Number of tripins (3-stars) from a degree sequence: `Σ C(d_i, 3)`.
///
/// Accumulated in `f64` like [`hairpin_count`]: the integer product `d·(d−1)·(d−2)` overflows
/// `usize` for hub degrees ≳ 2.6 million (and on 32-bit targets at `d ≈ 1'626`). Degrees 0–2
/// contribute exactly 0.0 because one factor is exactly zero.
pub fn tripin_count(degrees: &[usize]) -> f64 {
    degrees
        .iter()
        .map(|&d| {
            let d = d as f64;
            d * (d - 1.0) * (d - 2.0) / 6.0
        })
        .sum()
}

/// Exact number of triangles in `g`.
///
/// Uses the standard "forward" algorithm: for every edge `{u, v}` with `u < v`, count common
/// neighbours `w > v`. Runtime is `O(Σ_e min(d_u, d_v))`, comfortably fast for the graphs the
/// paper evaluates.
// lint:source(sensitive)
pub fn triangle_count(g: &Graph) -> u64 {
    triangle_count_par(g, &Executor::sequential())
}

/// [`triangle_count`] on `exec`'s compute threads, edge-partitioned: each fixed chunk of
/// the canonical edge list sums its common-neighbour counts independently and the partial sums
/// are combined in chunk order, so the result equals the sequential count for any thread count.
// lint:source(sensitive)
pub fn triangle_count_par(g: &Graph, exec: &Executor) -> u64 {
    let edges = g.edges();
    exec.map_reduce(
        edges.len(),
        EDGE_CHUNK,
        EDGE_WORK,
        |range| {
            edges[range].iter().map(|&(u, v)| count_common_neighbors_above(g, u, v, v)).sum::<u64>()
        },
        |acc: u64, partial| acc + partial,
        0,
    )
}

/// Number of triangles incident to each node.
pub fn per_node_triangles(g: &Graph) -> Vec<u64> {
    per_node_triangles_par(g, &Executor::sequential())
}

/// [`per_node_triangles`] on `exec`'s compute threads. Edge-partitioned with one `O(n)`
/// counter array per participant; the per-participant arrays are merged element-wise, which is
/// exact (integer sums), so the result is identical for any thread count.
pub fn per_node_triangles_par(g: &Graph, exec: &Executor) -> Vec<u64> {
    let edges = g.edges();
    let n = g.node_count();
    exec.fold_reduce(
        edges.len(),
        EDGE_CHUNK,
        EDGE_WORK,
        || vec![0u64; n],
        |counts, range| {
            for &(u, v) in &edges[range] {
                let (mut i, mut j) = (0usize, 0usize);
                let (nu, nv) = (g.neighbors(u), g.neighbors(v));
                while i < nu.len() && j < nv.len() {
                    match nu[i].cmp(&nv[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let w = nu[i];
                            if w > v {
                                counts[u as usize] += 1;
                                counts[v as usize] += 1;
                                counts[w as usize] += 1;
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    )
}

/// Number of common neighbours of `u` and `v` (the quantity `a_{ij}` in the smooth-sensitivity
/// analysis of the triangle count: adding or removing the edge `{u, v}` changes `Δ` by exactly
/// this amount).
pub fn common_neighbor_count(g: &Graph, u: u32, v: u32) -> usize {
    intersect_sorted(g.neighbors(u), g.neighbors(v))
}

/// Number of nodes adjacent to exactly one of `u`, `v`, excluding `u` and `v` themselves (the
/// quantity `b_{ij}` in the smooth-sensitivity analysis).
pub fn exclusive_neighbor_count(g: &Graph, u: u32, v: u32) -> usize {
    let nu = g.neighbors(u);
    let nv = g.neighbors(v);
    let common = intersect_sorted(nu, nv);
    let mut only = nu.len() + nv.len() - 2 * common;
    // Do not count u or v themselves: if {u,v} is an edge, v appears in N(u) and u in N(v) and
    // both belong to the symmetric difference.
    if nu.contains(&v) {
        only -= 1;
    }
    if nv.contains(&u) {
        only -= 1;
    }
    only
}

/// The largest common-neighbour count over all (ordered once) node pairs. This is the local
/// sensitivity of the triangle count (Definition 4.3 instantiated for `Δ`).
pub fn max_common_neighbors(g: &Graph) -> usize {
    let n = g.node_count() as u32;
    let mut best = 0usize;
    for u in 0..n {
        for v in (u + 1)..n {
            best = best.max(common_neighbor_count(g, u, v));
        }
    }
    best
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

fn count_common_neighbors_above(g: &Graph, u: u32, v: u32, floor: u32) -> u64 {
    let nu = g.neighbors(u);
    let nv = g.neighbors(v);
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < nu.len() && j < nv.len() {
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if nu[i] > floor {
                    count += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rand_edges;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn complete_graph(n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        Graph::from_edges(n, edges)
    }

    fn star_graph(leaves: usize) -> Graph {
        Graph::from_edges(leaves + 1, (1..=leaves as u32).map(|v| (0, v)))
    }

    #[test]
    fn triangle_count_of_complete_graphs() {
        // K_n has C(n,3) triangles.
        assert_eq!(triangle_count(&complete_graph(3)), 1);
        assert_eq!(triangle_count(&complete_graph(4)), 4);
        assert_eq!(triangle_count(&complete_graph(5)), 10);
        assert_eq!(triangle_count(&complete_graph(6)), 20);
    }

    #[test]
    fn triangle_count_of_triangle_free_graphs() {
        assert_eq!(triangle_count(&star_graph(10)), 0);
        let path = Graph::from_edges(5, (0..4u32).map(|i| (i, i + 1)));
        assert_eq!(triangle_count(&path), 0);
    }

    #[test]
    fn hairpin_count_of_star_is_choose_two() {
        // Star with c leaves: hub degree c, so C(c,2) wedges.
        let g = star_graph(6);
        let stats = MatchingStatistics::of_graph(&g);
        assert_eq!(stats.hairpins, 15.0);
        assert_eq!(stats.tripins, 20.0);
        assert_eq!(stats.edges, 6.0);
        assert_eq!(stats.triangles, 0.0);
    }

    #[test]
    fn statistics_of_complete_graph_match_binomials() {
        let n = 7usize;
        let g = complete_graph(n);
        let stats = MatchingStatistics::of_graph(&g);
        let c2 = (n * (n - 1) / 2) as f64;
        assert_eq!(stats.edges, c2);
        // Each node has degree n-1: H = n * C(n-1, 2), T = n * C(n-1, 3).
        assert_eq!(stats.hairpins, (n * (n - 1) * (n - 2) / 2) as f64);
        assert_eq!(stats.tripins, (n * (n - 1) * (n - 2) * (n - 3) / 6) as f64);
        assert_eq!(stats.triangles, (n * (n - 1) * (n - 2) / 6) as f64);
    }

    #[test]
    fn from_degree_sequence_matches_of_graph_for_degree_statistics() {
        let g = complete_graph(6);
        let degrees: Vec<f64> = g.degrees().iter().map(|&d| d as f64).collect();
        let exact = MatchingStatistics::of_graph(&g);
        let derived = MatchingStatistics::from_degree_sequence(&degrees, exact.triangles);
        assert!((derived.edges - exact.edges).abs() < 1e-9);
        assert!((derived.hairpins - exact.hairpins).abs() < 1e-9);
        assert!((derived.tripins - exact.tripins).abs() < 1e-9);
    }

    #[test]
    fn per_node_triangles_sum_to_three_times_total() {
        let g = complete_graph(5);
        let per_node = per_node_triangles(&g);
        let total: u64 = per_node.iter().sum();
        assert_eq!(total, 3 * triangle_count(&g));
        // In K_5 every node participates in C(4,2) = 6 triangles.
        assert!(per_node.iter().all(|&c| c == 6));
    }

    #[test]
    fn common_neighbors_of_triangle_edge() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(common_neighbor_count(&g, 0, 1), 1);
        assert_eq!(common_neighbor_count(&g, 0, 3), 1);
        assert_eq!(common_neighbor_count(&g, 1, 3), 1);
        assert_eq!(common_neighbor_count(&g, 0, 2), 1);
    }

    #[test]
    fn exclusive_neighbors_exclude_the_pair_itself() {
        // Path 0-1-2: N(0)={1}, N(2)={1}: common=1, exclusive=0.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        assert_eq!(exclusive_neighbor_count(&g, 0, 2), 0);
        // Pair (0,1): N(0)={1}, N(1)={0,2}. Excluding u,v themselves leaves just node 2.
        assert_eq!(exclusive_neighbor_count(&g, 0, 1), 1);
    }

    #[test]
    fn max_common_neighbors_of_complete_graph() {
        // Any pair in K_n has n-2 common neighbours.
        assert_eq!(max_common_neighbors(&complete_graph(6)), 4);
        assert_eq!(max_common_neighbors(&star_graph(5)), 1);
    }

    #[test]
    fn empty_graph_has_zero_counts() {
        let g = Graph::empty(4);
        let stats = MatchingStatistics::of_graph(&g);
        assert_eq!(stats.as_array(), [0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn adding_an_edge_increases_triangles_by_common_neighbors() {
        // This is the identity the local sensitivity argument relies on.
        let g = complete_graph(5).with_edge_removed(0, 1);
        let common = common_neighbor_count(&g, 0, 1);
        let before = triangle_count(&g);
        let after = triangle_count(&g.with_edge_added(0, 1));
        assert_eq!(after - before, common as u64);
    }

    #[test]
    fn hairpin_and_tripin_counts_survive_hub_degrees_past_the_usize_product_range() {
        // d·(d−1)·(d−2) overflows u64 (and wraps/panics in usize) for d ≳ 2.6M; the f64
        // accumulation must instead return the exact binomial. 3·10⁶ is a plausible hub degree
        // for the "millions of users" graphs the roadmap targets.
        let d = 3_000_000usize;
        let df = d as f64;
        assert_eq!(hairpin_count(&[d]), df * (df - 1.0) / 2.0);
        assert_eq!(tripin_count(&[d]), df * (df - 1.0) * (df - 2.0) / 6.0);
        assert!(tripin_count(&[d]) > 4.4e18, "must exceed u64::MAX/4 territory");
        // Small degrees keep their exact closed forms (and degrees 0–2 contribute nothing).
        assert_eq!(hairpin_count(&[0, 1, 2, 3]), 1.0 + 3.0);
        assert_eq!(tripin_count(&[0, 1, 2, 3, 4]), 1.0 + 4.0);
    }

    #[test]
    fn parallel_triangle_kernels_match_sequential_for_any_thread_count() {
        let mut rng = StdRng::seed_from_u64(0xC0_7004);
        for _ in 0..8 {
            let edges = rand_edges(&mut rng, 60, 600);
            let g = Graph::from_edges(60, edges);
            let count = triangle_count(&g);
            let per_node = per_node_triangles(&g);
            for threads in [1usize, 2, 8] {
                let exec = Executor::new(threads);
                assert_eq!(triangle_count_par(&g, &exec), count, "threads {threads}");
                assert_eq!(per_node_triangles_par(&g, &exec), per_node, "threads {threads}");
            }
        }
    }

    // Former proptest properties, now deterministic seeded loops.
    #[test]
    fn handshake_and_wedge_identities() {
        let mut rng = StdRng::seed_from_u64(0xC0_7001);
        for _ in 0..128 {
            let edges = rand_edges(&mut rng, 25, 150);
            let g = Graph::from_edges(25, edges);
            let stats = MatchingStatistics::of_graph(&g);
            let degrees = g.degrees();
            let degree_sum: usize = degrees.iter().sum();
            assert_eq!(degree_sum as f64, 2.0 * stats.edges);
            // Triangles can never exceed wedges / 3 is not an identity, but Δ ≤ H/3 *is*
            // (every triangle contains exactly 3 wedges).
            assert!(3.0 * stats.triangles <= stats.hairpins + 1e-9);
        }
    }

    #[test]
    fn edge_removal_changes_triangles_by_common_neighbors() {
        let mut rng = StdRng::seed_from_u64(0xC0_7002);
        for _ in 0..128 {
            let mut edges = rand_edges(&mut rng, 12, 60);
            if edges.is_empty() {
                edges.push((rng.gen_range(0..12), rng.gen_range(0..12)));
            }
            let g = Graph::from_edges(12, edges);
            if let Some(&(u, v)) = g.edges().first() {
                let expected_drop = common_neighbor_count(&g, u, v) as i64;
                let before = triangle_count(&g) as i64;
                let after = triangle_count(&g.with_edge_removed(u, v)) as i64;
                assert_eq!(before - after, expected_drop);
            }
        }
    }

    #[test]
    fn per_node_triangle_sum_is_three_times_count() {
        let mut rng = StdRng::seed_from_u64(0xC0_7003);
        for _ in 0..128 {
            let edges = rand_edges(&mut rng, 15, 80);
            let g = Graph::from_edges(15, edges);
            let total: u64 = per_node_triangles(&g).iter().sum();
            assert_eq!(total, 3 * triangle_count(&g));
        }
    }
}
