//! Breadth-first traversal utilities: single-source distances, connected components and the
//! reachable-pair counts behind the paper's hop plot.

use crate::graph::Graph;
use kronpriv_par::{Executor, Work};
use std::collections::VecDeque;

/// BFS sources per work chunk for [`reachable_pairs_by_hops_par`]. Fixed (independent of the
/// thread count) so the per-chunk histograms — and their exact integer merge — are identical
/// for any [`Executor`].
const SOURCE_CHUNK: usize = 32;

/// Cost hint for one BFS source: a full `O(nodes + edges)` traversal, estimated from the graph
/// shape alone so the executor's sequential cutoff stays a pure function of the input.
fn bfs_work(g: &Graph) -> Work {
    Work::per_item_ns(2 * (g.node_count() as u64 + 2 * g.edge_count() as u64))
}

/// BFS distances (in hops) from `source` to every node; unreachable nodes get `None`.
pub fn bfs_distances(g: &Graph, source: u32) -> Vec<Option<u32>> {
    let n = g.node_count();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    if (source as usize) >= n {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source as usize] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize].expect("queued nodes always carry a distance");
        for &v in g.neighbors(u) {
            if dist[v as usize].is_none() {
                dist[v as usize] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components as a label per node (labels are `0..component_count`, assigned in
/// order of discovery by node id).
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    for start in 0..n as u32 {
        if label[start as usize] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        label[start as usize] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v as usize] == usize::MAX {
                    label[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    connected_components(g).iter().copied().max().map_or(0, |m| m + 1)
}

/// Node ids of the largest connected component (ties broken towards the component containing
/// the smallest node id).
pub fn largest_component(g: &Graph) -> Vec<u32> {
    let labels = connected_components(g);
    let k = component_count(g);
    if k == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l] += 1;
    }
    let best = (0..k)
        .max_by_key(|&l| (sizes[l], std::cmp::Reverse(l)))
        .expect("k >= 1: the empty-graph case returned above");
    (0..g.node_count() as u32).filter(|&u| labels[u as usize] == best).collect()
}

/// Eccentricity-style diameter of the graph restricted to reachable pairs: the maximum finite
/// BFS distance over all source nodes. Returns 0 for graphs with no edges.
///
/// This is exact (all-sources BFS), which is affordable for the graph sizes in the paper.
pub fn effective_diameter_exact(g: &Graph) -> u32 {
    let mut best = 0u32;
    for u in 0..g.node_count() as u32 {
        for d in bfs_distances(g, u).into_iter().flatten() {
            best = best.max(d);
        }
    }
    best
}

/// Counts, for each hop count `h = 0, 1, 2, …`, the number of *ordered* pairs of nodes `(u, v)`
/// with `dist(u, v) ≤ h` (the quantity plotted on the y-axis of the paper's hop plots). Index 0
/// therefore equals the number of nodes. The vector stops growing once all reachable pairs are
/// covered.
pub fn reachable_pairs_by_hops(g: &Graph) -> Vec<u64> {
    reachable_pairs_by_hops_par(g, &Executor::sequential())
}

/// [`reachable_pairs_by_hops`] on `exec`'s compute threads, source-partitioned: each
/// fixed chunk of BFS sources builds its own per-distance histogram and the histograms are
/// summed element-wise (exact integer addition), so the curve is identical for any thread count.
pub fn reachable_pairs_by_hops_par(g: &Graph, exec: &Executor) -> Vec<u64> {
    let n = g.node_count();
    let per_hop = exec.fold_reduce(
        n,
        SOURCE_CHUNK,
        bfs_work(g),
        Vec::<u64>::new,
        |histogram, sources| {
            for u in sources {
                for d in bfs_distances(g, u as u32).into_iter().flatten() {
                    let d = d as usize;
                    if histogram.len() <= d {
                        histogram.resize(d + 1, 0);
                    }
                    histogram[d] += 1;
                }
            }
        },
        |mut a, b| {
            if a.len() < b.len() {
                a.resize(b.len(), 0);
            }
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    );
    // Convert the per-distance histogram into a cumulative count.
    let mut cumulative = 0u64;
    per_hop
        .into_iter()
        .map(|c| {
            cumulative += c;
            cumulative
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rand_edges;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_marks_unreachable_nodes_none() {
        let g = Graph::from_edges(4, vec![(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn bfs_from_out_of_range_source_is_all_none() {
        let g = path(3);
        assert!(bfs_distances(&g, 9).iter().all(Option::is_none));
    }

    #[test]
    fn connected_components_of_two_cliques() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)]);
        let labels = connected_components(&g);
        assert_eq!(component_count(&g), 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn isolated_nodes_are_their_own_components() {
        let g = Graph::empty(3);
        assert_eq!(component_count(&g), 3);
    }

    #[test]
    fn largest_component_returns_biggest_piece() {
        let g = Graph::from_edges(7, vec![(0, 1), (2, 3), (3, 4), (4, 2), (5, 6)]);
        assert_eq!(largest_component(&g), vec![2, 3, 4]);
    }

    #[test]
    fn diameter_of_path_is_length() {
        assert_eq!(effective_diameter_exact(&path(6)), 5);
    }

    #[test]
    fn diameter_of_disconnected_graph_ignores_unreachable_pairs() {
        let g = Graph::from_edges(5, vec![(0, 1), (2, 3)]);
        assert_eq!(effective_diameter_exact(&g), 1);
    }

    #[test]
    fn hop_plot_of_triangle() {
        // Triangle: 3 pairs at distance 0 (self), 6 ordered pairs at distance 1.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(reachable_pairs_by_hops(&g), vec![3, 9]);
    }

    #[test]
    fn hop_plot_of_path_is_cumulative_and_saturates() {
        let g = path(4);
        let hops = reachable_pairs_by_hops(&g);
        // h=0: 4, h=1: +6 ordered adjacent pairs = 10, h=2: +4 = 14, h=3: +2 = 16 = n^2.
        assert_eq!(hops, vec![4, 10, 14, 16]);
        assert_eq!(*hops.last().unwrap(), 16);
    }

    #[test]
    fn hop_plot_is_monotone_non_decreasing() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let hops = reachable_pairs_by_hops(&g);
        assert!(hops.windows(2).all(|w| w[0] <= w[1]));
    }

    // Former proptest properties, now deterministic seeded loops.
    #[test]
    fn hop_plot_saturates_at_sum_of_squared_component_sizes() {
        let mut rng = StdRng::seed_from_u64(0x7A_7001);
        for _ in 0..128 {
            let edges = rand_edges(&mut rng, 12, 40);
            let g = Graph::from_edges(12, edges);
            let hops = reachable_pairs_by_hops(&g);
            let labels = connected_components(&g);
            let k = component_count(&g);
            let mut sizes = vec![0u64; k];
            for &l in &labels {
                sizes[l] += 1;
            }
            let expected: u64 = sizes.iter().map(|s| s * s).sum();
            assert_eq!(*hops.last().unwrap(), expected);
        }
    }

    #[test]
    fn bfs_distance_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(0x7A_7002);
        for _ in 0..64 {
            let mut edges = rand_edges(&mut rng, 10, 40);
            if edges.is_empty() {
                edges.push((rng.gen_range(0..10), rng.gen_range(0..10)));
            }
            let g = Graph::from_edges(10, edges);
            let d0 = bfs_distances(&g, 0);
            for v in 1..10u32 {
                let dv = bfs_distances(&g, v);
                assert_eq!(d0[v as usize], dv[0]);
            }
        }
    }

    #[test]
    fn component_labels_are_consistent_with_reachability() {
        let mut rng = StdRng::seed_from_u64(0x7A_7003);
        for _ in 0..128 {
            let edges = rand_edges(&mut rng, 10, 30);
            let g = Graph::from_edges(10, edges);
            let labels = connected_components(&g);
            let d0 = bfs_distances(&g, 0);
            for v in 0..10usize {
                assert_eq!(labels[v] == labels[0], d0[v].is_some());
            }
        }
    }
}
