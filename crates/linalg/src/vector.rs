//! Dense vector helpers used by the iterative eigen-solvers.
//!
//! All routines operate on `&[f64]` / `&mut [f64]` slices so they compose with both owned
//! vectors and borrowed work buffers.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` (the classic BLAS `axpy`).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch {} vs {}", x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` in place.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalises `x` to unit Euclidean norm in place and returns the original norm.
///
/// If the norm is zero (or not finite) the vector is left untouched and `0.0` is returned, so
/// callers can detect a degenerate iterate.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 && n.is_finite() {
        scale(1.0 / n, x);
        n
    } else {
        0.0
    }
}

/// Removes from `x` its components along each (assumed orthonormal) vector in `basis`.
///
/// This is one pass of classical Gram–Schmidt; the Lanczos and deflated power iterations call it
/// twice per step, which is the standard "twice is enough" re-orthogonalisation.
pub fn orthogonalize_against(x: &mut [f64], basis: &[Vec<f64>]) {
    for q in basis {
        let c = dot(x, q);
        axpy(-c, q, x);
    }
}

/// Maximum absolute difference between two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rand_vec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_matches_hand_computation() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm2_of_unit_axis_vector() {
        assert_eq!(norm2(&[0.0, 1.0, 0.0]), 1.0);
    }

    #[test]
    fn norm2_of_345_triangle() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_multiplies_every_entry() {
        let mut x = vec![1.0, -2.0, 0.5];
        scale(-2.0, &mut x);
        assert_eq!(x, vec![-2.0, 4.0, -1.0]);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_leaves_zero_vector_untouched() {
        let mut x = vec![0.0, 0.0];
        let n = normalize(&mut x);
        assert_eq!(n, 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn orthogonalize_removes_component() {
        let basis = vec![vec![1.0, 0.0, 0.0]];
        let mut x = vec![2.0, 3.0, 4.0];
        orthogonalize_against(&mut x, &basis);
        assert_eq!(x, vec![0.0, 3.0, 4.0]);
    }

    #[test]
    fn max_abs_diff_finds_largest_gap() {
        assert_eq!(max_abs_diff(&[1.0, 2.0, 3.0], &[1.0, 5.0, 2.5]), 3.0);
    }

    // Former proptest properties, now driven by a seeded RNG for deterministic offline runs.
    #[test]
    fn dot_is_commutative() {
        let mut rng = StdRng::seed_from_u64(0x7EC_7001);
        for _ in 0..128 {
            let len = rng.gen_range(1..32usize);
            let a = rand_vec(&mut rng, len, -100.0, 100.0);
            let b: Vec<f64> = a.iter().rev().cloned().collect();
            assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-9);
        }
    }

    #[test]
    fn cauchy_schwarz_holds() {
        let mut rng = StdRng::seed_from_u64(0x7EC_7002);
        for _ in 0..128 {
            let len = rng.gen_range(1..16usize);
            let a = rand_vec(&mut rng, len, -10.0, 10.0);
            let seed = rng.gen_range(0..1000u64);
            // Build b deterministically from a and the seed so lengths always match.
            let b: Vec<f64> = a
                .iter()
                .enumerate()
                .map(|(i, x)| x * ((seed as f64) * 0.01 + i as f64 * 0.1) - 1.0)
                .collect();
            assert!(dot(&a, &b).abs() <= norm2(&a) * norm2(&b) + 1e-9);
        }
    }

    #[test]
    fn normalize_is_idempotent_up_to_tolerance() {
        let mut rng = StdRng::seed_from_u64(0x7EC_7003);
        for _ in 0..128 {
            let len = rng.gen_range(1..32usize);
            let a = rand_vec(&mut rng, len, -100.0, 100.0);
            let mut x = a.clone();
            let n = normalize(&mut x);
            if n > 1e-9 {
                let mut y = x.clone();
                normalize(&mut y);
                assert!(max_abs_diff(&x, &y) < 1e-9);
            }
        }
    }
}
