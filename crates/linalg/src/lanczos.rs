//! Lanczos iteration for approximating the extreme eigenvalues of a large sparse symmetric
//! matrix.
//!
//! The scree plot in the paper's evaluation shows the top ~100 singular values of the adjacency
//! matrix versus rank. For the 5k–20k node graphs involved, a Lanczos run with full
//! re-orthogonalisation and a few hundred iterations recovers those leading values accurately
//! and far faster than deflated power iteration would. For a symmetric matrix, singular values
//! are the magnitudes of the eigenvalues, which is how [`crate::power`] / this module get used
//! by `kronpriv-stats`.

use crate::csr::CsrMatrix;
use crate::tridiag::symmetric_tridiagonal_eigenvalues;
use crate::vector::{axpy, dot, normalize, orthogonalize_against};
use rand::Rng;

/// Options controlling [`lanczos_eigenvalues`].
#[derive(Debug, Clone, Copy)]
pub struct LanczosOptions {
    /// Size of the Krylov subspace to build. More steps give more converged Ritz values; a good
    /// default is `2 * k + 20` when `k` leading eigenvalues are wanted.
    pub steps: usize,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions { steps: 120 }
    }
}

/// Runs Lanczos with full re-orthogonalisation on the symmetric matrix `a` and returns the `k`
/// Ritz values of largest magnitude, sorted by decreasing magnitude.
///
/// The result length may be smaller than `k` if the Krylov space is exhausted early (for example
/// on low-rank matrices).
pub fn lanczos_eigenvalues<R: Rng + ?Sized>(
    a: &CsrMatrix,
    k: usize,
    options: &LanczosOptions,
    rng: &mut R,
) -> Vec<f64> {
    assert_eq!(a.rows(), a.cols(), "lanczos requires a square matrix");
    let n = a.rows();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let steps = options.steps.max(k).min(n);

    let mut alphas: Vec<f64> = Vec::with_capacity(steps);
    let mut betas: Vec<f64> = Vec::with_capacity(steps.saturating_sub(1));
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(steps);

    let mut q: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    if normalize(&mut q) == 0.0 {
        return Vec::new();
    }

    for step in 0..steps {
        let mut w = a.mul_vec(&q);
        let alpha = dot(&q, &w);
        alphas.push(alpha);
        axpy(-alpha, &q, &mut w);
        if step > 0 {
            let beta_prev = betas[step - 1];
            axpy(-beta_prev, &basis[step - 1], &mut w);
        }
        // Full re-orthogonalisation (twice) keeps the Ritz values from producing spurious
        // duplicate copies of already-converged eigenvalues.
        orthogonalize_against(&mut w, &basis);
        orthogonalize_against(&mut w, &basis);
        basis.push(q.clone());
        let beta = normalize(&mut w);
        if step + 1 < steps {
            if beta <= 1e-14 {
                break;
            }
            betas.push(beta);
            q = w;
        }
    }

    let mut ritz = symmetric_tridiagonal_eigenvalues(&alphas, &betas[..alphas.len() - 1]);
    sort_by_magnitude_positive_first(&mut ritz);
    ritz.truncate(k);
    ritz
}

/// Sorts eigenvalues by decreasing magnitude, then reorders runs of near-tied magnitudes
/// (pure round-off differences, e.g. the ±sqrt(c) pair of a star graph) by value descending, so
/// the ordering is deterministic and the positive member of a symmetric pair comes first.
///
/// This is done as a total-order sort followed by a grouping pass rather than a single
/// tolerance-aware comparator: a "compare by value when magnitudes are within ε" comparator is
/// not transitive (a ≈ b and b ≈ c do not imply a ≈ c), which makes `sort_by` output
/// input-dependent and can trip std's total-order debug check.
fn sort_by_magnitude_positive_first(values: &mut [f64]) {
    values.sort_by(|x, y| y.abs().total_cmp(&x.abs()));
    let mut start = 0;
    while start < values.len() {
        // Grow the near-tie run by chaining adjacent comparisons.
        let mut end = start + 1;
        while end < values.len() {
            let (prev, next) = (values[end - 1].abs(), values[end].abs());
            if (prev - next).abs() > 1e-9 * prev.max(next).max(1.0) {
                break;
            }
            end += 1;
        }
        values[start..end].sort_by(|a, b| b.total_cmp(a));
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn diag(values: &[f64]) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> =
            values.iter().enumerate().map(|(i, &v)| (i, i, v)).collect();
        CsrMatrix::from_triplets(values.len(), values.len(), &triplets)
    }

    #[test]
    fn recovers_leading_diagonal_entries() {
        let a = diag(&[10.0, -8.0, 6.0, 1.0, 0.5, 0.1, 3.0, -2.0]);
        let mut rng = StdRng::seed_from_u64(11);
        let ev = lanczos_eigenvalues(&a, 3, &LanczosOptions { steps: 8 }, &mut rng);
        assert_eq!(ev.len(), 3);
        assert!((ev[0] - 10.0).abs() < 1e-6, "{ev:?}");
        assert!((ev[1] + 8.0).abs() < 1e-6, "{ev:?}");
        assert!((ev[2] - 6.0).abs() < 1e-6, "{ev:?}");
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n has eigenvalues n-1 (once) and -1 (n-1 times).
        let n = 12usize;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        let a = CsrMatrix::symmetric_adjacency(n, &edges);
        let mut rng = StdRng::seed_from_u64(12);
        let ev = lanczos_eigenvalues(&a, 4, &LanczosOptions { steps: 12 }, &mut rng);
        assert!((ev[0] - (n as f64 - 1.0)).abs() < 1e-6);
        for v in &ev[1..] {
            assert!((v + 1.0).abs() < 1e-5, "{ev:?}");
        }
    }

    #[test]
    fn star_graph_spectrum_matches_sqrt_formula() {
        // Star with c leaves: eigenvalues ±sqrt(c) plus zeros.
        let leaves = 9u32;
        let edges: Vec<(u32, u32)> = (1..=leaves).map(|v| (0, v)).collect();
        let a = CsrMatrix::symmetric_adjacency(leaves as usize + 1, &edges);
        let mut rng = StdRng::seed_from_u64(13);
        let ev = lanczos_eigenvalues(&a, 2, &LanczosOptions { steps: 10 }, &mut rng);
        assert!((ev[0] - 3.0).abs() < 1e-6);
        assert!((ev[1] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn agrees_with_power_iteration_on_random_like_graph() {
        // Deterministic pseudo-random sparse graph; compare leading eigenvalue from both solvers.
        let n = 60usize;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for step in 1..=3u32 {
                let v = (u * 7 + step * 13) % n as u32;
                if v != u {
                    edges.push((u.min(v), u.max(v)));
                }
            }
        }
        let a = CsrMatrix::symmetric_adjacency(n, &edges);
        let mut rng = StdRng::seed_from_u64(14);
        let lz = lanczos_eigenvalues(&a, 1, &LanczosOptions { steps: 60 }, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(15);
        let pw = crate::power::principal_eigenpair(
            &a,
            &crate::power::PowerIterationOptions { max_iterations: 5000, tolerance: 1e-12 },
            &mut rng2,
        )
        .unwrap();
        assert!((lz[0].abs() - pw.value.abs()).abs() < 1e-5, "{} vs {}", lz[0], pw.value);
    }

    #[test]
    fn empty_matrix_returns_empty() {
        let a = CsrMatrix::from_triplets(0, 0, &[]);
        let mut rng = StdRng::seed_from_u64(16);
        assert!(lanczos_eigenvalues(&a, 3, &LanczosOptions::default(), &mut rng).is_empty());
    }

    #[test]
    fn requesting_zero_values_returns_empty() {
        let a = diag(&[1.0, 2.0]);
        let mut rng = StdRng::seed_from_u64(17);
        assert!(lanczos_eigenvalues(&a, 0, &LanczosOptions::default(), &mut rng).is_empty());
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Regression for the star-graph ordering bug: the ±sqrt(c) eigenvalue pair differs only by
    /// round-off in magnitude, so the old pure-|λ| sort ordered them by noise (sometimes
    /// returning [-3, +3]). The tie-break must put the positive member first, for every seed.
    #[test]
    fn symmetric_pair_orders_positive_first_for_any_seed() {
        let leaves = 9u32;
        let edges: Vec<(u32, u32)> = (1..=leaves).map(|v| (0, v)).collect();
        let a = CsrMatrix::symmetric_adjacency(leaves as usize + 1, &edges);
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let ev = lanczos_eigenvalues(&a, 2, &LanczosOptions { steps: 10 }, &mut rng);
            assert!((ev[0] - 3.0).abs() < 1e-6, "seed {seed}: {ev:?}");
            assert!((ev[1] + 3.0).abs() < 1e-6, "seed {seed}: {ev:?}");
        }
    }

    /// Regression for the intransitive-comparator bug: a single tolerance-aware comparator is
    /// not a total order (a ≈ b, b ≈ c but a ≉ c forms a cycle), which made the sorted order
    /// input-dependent and could trip std sort's total-order check. The grouped two-pass sort
    /// must order this adversarial chain deterministically, positives first within each tie run.
    #[test]
    fn near_tie_chains_sort_deterministically_and_positive_first() {
        let mut values = vec![-1.0, -(1.0 + 0.9e-9), 1.0 - 0.9e-9, 2.0, -2.0, 0.5];
        sort_by_magnitude_positive_first(&mut values);
        assert_eq!(values, vec![2.0, -2.0, 1.0 - 0.9e-9, -1.0, -(1.0 + 0.9e-9), 0.5]);
        // Longer chain where every adjacent pair is within tolerance: one run, value-descending.
        let mut chain: Vec<f64> = (0..200)
            .map(|i| (1.0 + i as f64 * 1e-10) * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        sort_by_magnitude_positive_first(&mut chain);
        assert!(chain.windows(2).all(|w| w[0] >= w[1]), "run must be value-descending");
    }
}
