//! Small statistical helpers shared across the workspace: means, variances, quantiles and
//! logarithmic binning used when summarising heavy-tailed distributions (degree distributions,
//! network values, clustering-coefficient curves).

/// Arithmetic mean; returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Unbiased sample variance; returns 0.0 for slices with fewer than two elements.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Median (average of the two middle values for even lengths); returns 0.0 for an empty slice.
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Empirical quantile using linear interpolation between order statistics.
/// `q` is clamped to `[0, 1]`. Returns 0.0 for an empty slice.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Relative error `|estimate - truth| / max(|truth|, floor)`, with a floor to avoid division by
/// zero when the true value is tiny.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    (estimate - truth).abs() / truth.abs().max(1e-12)
}

/// One logarithmic bin produced by [`log_bin`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogBin {
    /// Geometric centre of the bin (x-coordinate for plotting).
    pub center: f64,
    /// Lower edge (inclusive).
    pub lower: f64,
    /// Upper edge (exclusive).
    pub upper: f64,
    /// Number of points that fell in the bin.
    pub count: usize,
    /// Mean of the y-values that fell in the bin (0.0 if empty).
    pub mean_y: f64,
}

/// Bins `(x, y)` points into `bins_per_decade`-per-decade logarithmic bins over the positive `x`
/// values. Non-positive `x` values are skipped. Empty bins are omitted from the output.
///
/// This is how the paper's log–log plots (clustering coefficient vs. degree, network value vs.
/// rank) are summarised into comparable series.
pub fn log_bin(points: &[(f64, f64)], bins_per_decade: usize) -> Vec<LogBin> {
    let positive: Vec<(f64, f64)> = points.iter().copied().filter(|&(x, _)| x > 0.0).collect();
    if positive.is_empty() || bins_per_decade == 0 {
        return Vec::new();
    }
    let min_x = positive.iter().map(|&(x, _)| x).fold(f64::INFINITY, f64::min);
    let max_x = positive.iter().map(|&(x, _)| x).fold(0.0_f64, f64::max);
    let log_min = min_x.log10().floor();
    let log_max = max_x.log10().ceil();
    let width = 1.0 / bins_per_decade as f64;
    let n_bins = (((log_max - log_min) / width).ceil() as usize).max(1);

    let mut sums = vec![0.0; n_bins];
    let mut counts = vec![0usize; n_bins];
    for &(x, y) in &positive {
        let idx = (((x.log10() - log_min) / width).floor() as usize).min(n_bins - 1);
        sums[idx] += y;
        counts[idx] += 1;
    }

    (0..n_bins)
        .filter(|&i| counts[i] > 0)
        .map(|i| {
            let lower = 10f64.powf(log_min + i as f64 * width);
            let upper = 10f64.powf(log_min + (i as f64 + 1.0) * width);
            LogBin {
                center: (lower * upper).sqrt(),
                lower,
                upper,
                count: counts[i],
                mean_y: sums[i] / counts[i] as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rand_vec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mean_of_empty_slice_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_matches_hand_computation() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn variance_of_constant_sequence_is_zero() {
        assert_eq!(variance(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn variance_matches_known_value() {
        // Sample variance of [2, 4, 4, 4, 5, 5, 7, 9] is 32/7.
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&v) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn median_of_odd_and_even_lengths() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn quantile_endpoints_are_min_and_max() {
        let v = [10.0, -1.0, 4.0];
        assert_eq!(quantile(&v, 0.0), -1.0);
        assert_eq!(quantile(&v, 1.0), 10.0);
    }

    #[test]
    fn quantile_is_clamped() {
        let v = [1.0, 2.0];
        assert_eq!(quantile(&v, -3.0), 1.0);
        assert_eq!(quantile(&v, 7.0), 2.0);
    }

    #[test]
    fn relative_error_handles_zero_truth() {
        assert!(relative_error(1.0, 0.0).is_finite());
        assert_eq!(relative_error(5.0, 5.0), 0.0);
    }

    #[test]
    fn log_bin_groups_points_by_decade() {
        let points = [(1.0, 1.0), (2.0, 3.0), (15.0, 10.0), (150.0, 5.0)];
        let bins = log_bin(&points, 1);
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].count, 2);
        assert!((bins[0].mean_y - 2.0).abs() < 1e-12);
        assert_eq!(bins[1].count, 1);
        assert_eq!(bins[2].count, 1);
    }

    #[test]
    fn log_bin_skips_non_positive_x() {
        let bins = log_bin(&[(0.0, 1.0), (-2.0, 1.0)], 2);
        assert!(bins.is_empty());
    }

    #[test]
    fn log_bin_counts_sum_to_number_of_positive_points() {
        let points: Vec<(f64, f64)> = (1..=100).map(|i| (i as f64, 1.0)).collect();
        let bins = log_bin(&points, 5);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 100);
    }

    // Former proptest properties, now driven by a seeded RNG for deterministic offline runs.
    #[test]
    fn variance_is_non_negative() {
        let mut rng = StdRng::seed_from_u64(0x071_7001);
        for _ in 0..128 {
            let len = rng.gen_range(0..50usize);
            let v = rand_vec(&mut rng, len, -100.0, 100.0);
            assert!(variance(&v) >= 0.0);
        }
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let mut rng = StdRng::seed_from_u64(0x071_7002);
        for _ in 0..128 {
            let len = rng.gen_range(1..50usize);
            let v = rand_vec(&mut rng, len, -100.0, 100.0);
            let q1 = rng.gen_range(0.0..1.0);
            let q2 = rng.gen_range(0.0..1.0);
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            assert!(quantile(&v, lo) <= quantile(&v, hi) + 1e-12);
        }
    }

    #[test]
    fn log_bins_are_ordered_and_disjoint() {
        let mut rng = StdRng::seed_from_u64(0x071_7003);
        for _ in 0..128 {
            let len = rng.gen_range(1..60usize);
            let xs = rand_vec(&mut rng, len, 0.1, 1e4);
            let points: Vec<(f64, f64)> = xs.iter().map(|&x| (x, x)).collect();
            let bins = log_bin(&points, 3);
            for w in bins.windows(2) {
                assert!(w[0].upper <= w[1].lower + 1e-9);
            }
        }
    }
}
