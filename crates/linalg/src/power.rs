//! Shifted power iteration with deflation for the leading eigenpairs of a symmetric matrix.
//!
//! The network-value plot in the paper needs the principal eigenvector of the adjacency matrix
//! (the eigenvector of the algebraically largest eigenvalue — for a non-negative adjacency
//! matrix this is the Perron eigenvector). Plain power iteration stalls on bipartite-like graphs
//! where the extreme eigenvalues come in a `±λ` pair, so the iteration here runs on the shifted
//! operator `A + σI` with `σ` equal to the infinity norm of `A`. The shift makes every
//! eigenvalue non-negative and the algebraically largest strictly dominant, without changing the
//! eigenvectors. Deflation (projecting out converged eigenvectors) then exposes the next
//! algebraically largest eigenvalue, and so on.
//!
//! Use [`crate::lanczos`] when eigenvalues of largest *magnitude* (singular values of the
//! adjacency matrix, i.e. the scree plot) are wanted.

use crate::csr::CsrMatrix;
use crate::vector::{dot, normalize, orthogonalize_against};
use rand::Rng;

/// Options controlling [`top_eigenpairs`].
#[derive(Debug, Clone, Copy)]
pub struct PowerIterationOptions {
    /// Maximum number of iterations per eigenpair.
    pub max_iterations: usize,
    /// Convergence tolerance on the change of the Rayleigh quotient between iterations.
    pub tolerance: f64,
}

impl Default for PowerIterationOptions {
    fn default() -> Self {
        PowerIterationOptions { max_iterations: 2000, tolerance: 1e-12 }
    }
}

/// One converged eigenpair of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct EigenPair {
    /// The eigenvalue of the original (unshifted) matrix.
    pub value: f64,
    /// The unit-norm eigenvector.
    pub vector: Vec<f64>,
    /// Number of iterations the power method used.
    pub iterations: usize,
}

/// Infinity norm (maximum absolute row sum) of `a`, used as the spectral shift.
fn infinity_norm(a: &CsrMatrix) -> f64 {
    (0..a.rows()).map(|r| a.row(r).map(|(_, v)| v.abs()).sum::<f64>()).fold(0.0_f64, f64::max)
}

/// Computes the `k` algebraically largest eigenpairs of the symmetric matrix `a`, sorted by
/// decreasing eigenvalue.
///
/// Eigenvectors are mutually orthogonal (they are re-orthogonalised against all previously
/// converged vectors on every iteration). The returned list may be shorter than `k` if iterates
/// vanish (e.g. the matrix dimension is smaller than `k`).
pub fn top_eigenpairs<R: Rng + ?Sized>(
    a: &CsrMatrix,
    k: usize,
    options: &PowerIterationOptions,
    rng: &mut R,
) -> Vec<EigenPair> {
    assert_eq!(a.rows(), a.cols(), "top_eigenpairs requires a square matrix");
    let n = a.rows();
    let k = k.min(n);
    let shift = infinity_norm(a) + 1.0;
    let mut converged: Vec<EigenPair> = Vec::with_capacity(k);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(k);

    for _ in 0..k {
        let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        orthogonalize_against(&mut x, &basis);
        if normalize(&mut x) == 0.0 {
            break;
        }
        let mut prev_lambda = f64::INFINITY;
        let mut lambda = 0.0;
        let mut iterations = 0;
        let mut y = vec![0.0; n];
        for it in 0..options.max_iterations {
            iterations = it + 1;
            // y = (A + shift I) x
            a.mul_vec_into(&x, &mut y);
            for (yi, xi) in y.iter_mut().zip(&x) {
                *yi += shift * xi;
            }
            // Deflation: keep the iterate orthogonal to converged eigenvectors. Re-projecting on
            // every step prevents converged directions re-entering through rounding noise.
            orthogonalize_against(&mut y, &basis);
            orthogonalize_against(&mut y, &basis);
            // Rayleigh quotient of the *unshifted* matrix: xᵀ(A+σI)x − σ = xᵀAx for unit x.
            lambda = dot(&x, &y) - shift;
            if normalize(&mut y) == 0.0 {
                // The remaining invariant subspace is (numerically) null relative to the shift.
                break;
            }
            std::mem::swap(&mut x, &mut y);
            if (lambda - prev_lambda).abs() <= options.tolerance * (lambda.abs() + shift) {
                break;
            }
            prev_lambda = lambda;
        }
        if !lambda.is_finite() {
            break;
        }
        basis.push(x.clone());
        converged.push(EigenPair { value: lambda, vector: x, iterations });
    }
    converged.sort_by(|p, q| q.value.total_cmp(&p.value));
    converged
}

/// Convenience wrapper returning only the principal (algebraically largest) eigenpair.
///
/// For a non-negative adjacency matrix this is the Perron eigenpair, whose eigenvector
/// components are the "network values" plotted in the paper's Figures 1–4(d).
///
/// Returns `None` for an empty matrix.
pub fn principal_eigenpair<R: Rng + ?Sized>(
    a: &CsrMatrix,
    options: &PowerIterationOptions,
    rng: &mut R,
) -> Option<EigenPair> {
    top_eigenpairs(a, 1, options, rng).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn diag(values: &[f64]) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> =
            values.iter().enumerate().map(|(i, &v)| (i, i, v)).collect();
        CsrMatrix::from_triplets(values.len(), values.len(), &triplets)
    }

    #[test]
    fn principal_eigenvalue_of_diagonal_matrix() {
        let a = diag(&[1.0, 5.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let pair = principal_eigenpair(&a, &PowerIterationOptions::default(), &mut rng).unwrap();
        assert!((pair.value - 5.0).abs() < 1e-8, "got {}", pair.value);
        // Eigenvector should be concentrated on index 1.
        assert!(pair.vector[1].abs() > 0.999);
    }

    #[test]
    fn top_eigenpairs_of_diagonal_matrix_sorted_algebraically() {
        let a = diag(&[1.0, -7.0, 3.0, 5.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let pairs = top_eigenpairs(&a, 3, &PowerIterationOptions::default(), &mut rng);
        assert_eq!(pairs.len(), 3);
        let vals: Vec<f64> = pairs.iter().map(|p| p.value).collect();
        assert!((vals[0] - 5.0).abs() < 1e-7, "{vals:?}");
        assert!((vals[1] - 3.0).abs() < 1e-7, "{vals:?}");
        assert!((vals[2] - 1.0).abs() < 1e-7, "{vals:?}");
    }

    #[test]
    fn eigenvectors_are_orthogonal() {
        let a = diag(&[4.0, 2.0, 9.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = top_eigenpairs(&a, 3, &PowerIterationOptions::default(), &mut rng);
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                assert!(dot(&pairs[i].vector, &pairs[j].vector).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn path_graph_adjacency_eigenvalue_matches_closed_form() {
        // Path on n nodes: eigenvalues are 2 cos(pi i / (n+1)); the largest is 2 cos(pi/(n+1)).
        // The path graph is bipartite (±λ extremes), which is exactly the case the spectral
        // shift exists for.
        let n = 10;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let a = CsrMatrix::symmetric_adjacency(n, &edges);
        let mut rng = StdRng::seed_from_u64(4);
        let pair = principal_eigenpair(&a, &PowerIterationOptions::default(), &mut rng).unwrap();
        let expected = 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        assert!((pair.value - expected).abs() < 1e-6, "got {} want {}", pair.value, expected);
    }

    #[test]
    fn complete_graph_principal_eigenvalue_is_n_minus_one() {
        let n = 6usize;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        let a = CsrMatrix::symmetric_adjacency(n, &edges);
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = top_eigenpairs(&a, 2, &PowerIterationOptions::default(), &mut rng);
        assert!((pairs[0].value - (n as f64 - 1.0)).abs() < 1e-6);
        // Second eigenvalue of K_n is -1.
        assert!((pairs[1].value + 1.0).abs() < 1e-5);
    }

    #[test]
    fn star_graph_perron_vector_has_hub_dominance() {
        // Star with c leaves: principal eigenvalue sqrt(c); the hub component is 1/sqrt(2) and
        // each leaf component is 1/sqrt(2c).
        let leaves = 16u32;
        let edges: Vec<(u32, u32)> = (1..=leaves).map(|v| (0, v)).collect();
        let a = CsrMatrix::symmetric_adjacency(leaves as usize + 1, &edges);
        let mut rng = StdRng::seed_from_u64(8);
        let pair = principal_eigenpair(&a, &PowerIterationOptions::default(), &mut rng).unwrap();
        assert!((pair.value - 4.0).abs() < 1e-7);
        let hub = pair.vector[0].abs();
        let leaf = pair.vector[1].abs();
        assert!((hub - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-5);
        assert!((leaf - 1.0 / (2.0 * leaves as f64).sqrt()).abs() < 1e-5);
    }

    #[test]
    fn perron_vector_of_connected_graph_has_constant_sign() {
        let edges = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)];
        let a = CsrMatrix::symmetric_adjacency(4, &edges);
        let mut rng = StdRng::seed_from_u64(9);
        let pair = principal_eigenpair(&a, &PowerIterationOptions::default(), &mut rng).unwrap();
        let signs: Vec<bool> = pair.vector.iter().map(|&x| x > 0.0).collect();
        assert!(signs.iter().all(|&s| s) || signs.iter().all(|&s| !s), "{:?}", pair.vector);
    }

    #[test]
    fn requesting_more_pairs_than_dimension_truncates() {
        let a = diag(&[2.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(6);
        let pairs = top_eigenpairs(&a, 5, &PowerIterationOptions::default(), &mut rng);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn zero_matrix_returns_zero_eigenvalues() {
        let a = CsrMatrix::from_triplets(3, 3, &[]);
        let mut rng = StdRng::seed_from_u64(7);
        let pairs = top_eigenpairs(&a, 2, &PowerIterationOptions::default(), &mut rng);
        for p in pairs {
            assert!(p.value.abs() < 1e-9);
        }
    }
}
