//! `kronpriv-linalg` — the numerical substrate for the `kronpriv` workspace.
//!
//! The differentially private stochastic Kronecker graph estimator needs a small amount of
//! numerical machinery that is deliberately implemented from scratch here rather than pulled in
//! from external linear-algebra crates:
//!
//! * dense vector helpers ([`vector`]),
//! * compressed sparse row (CSR) symmetric matrices and matrix–vector products ([`csr`]),
//! * iterative eigen-solvers for the scree-plot and network-value statistics
//!   ([`power`], [`lanczos`], [`tridiag`]),
//! * isotonic regression via the pool-adjacent-violators algorithm, used by the Hay et al.
//!   degree-sequence post-processing step ([`isotonic`]),
//! * small statistical utilities shared across the workspace ([`util`]).
//!
//! Everything operates on `f64` and plain `Vec`s: the graphs the paper evaluates on are in the
//! 5k–20k node range, so clarity and testability win over micro-optimisation, while the CSR
//! kernels keep the asymptotics right (O(|E|) per matrix–vector product).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod isotonic;
pub mod lanczos;
pub mod power;
pub mod tridiag;
pub mod util;
pub mod vector;

pub use csr::CsrMatrix;
pub use isotonic::{isotonic_decreasing, isotonic_increasing, IsotonicBlocks};
pub use lanczos::{lanczos_eigenvalues, LanczosOptions};
pub use power::{principal_eigenpair, top_eigenpairs, PowerIterationOptions};
pub use tridiag::symmetric_tridiagonal_eigenvalues;
pub use vector::{axpy, dot, norm2, normalize, scale};

#[cfg(test)]
pub(crate) mod test_support {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Draws a uniform random vector — the input generator shared by this crate's seeded
    /// property tests.
    pub(crate) fn rand_vec(rng: &mut StdRng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| rng.gen_range(lo..hi)).collect()
    }
}
