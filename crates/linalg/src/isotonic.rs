//! Isotonic regression via the pool-adjacent-violators algorithm (PAVA).
//!
//! Hay et al. ("Accurate estimation of the degree distribution of private networks", ICDM 2009)
//! release a differentially private sorted degree sequence by adding Laplace noise to the sorted
//! degrees and then post-processing the noisy sequence with *constrained inference*: the closest
//! (in L2) non-decreasing sequence to the noisy one. That projection onto the monotone cone is
//! exactly isotonic regression, computed here with the classic O(n) pool-adjacent-violators
//! algorithm. The post-processing step is what makes the noisy degree sequence accurate enough
//! to drive the moment-matching estimator in the paper.

/// Computes the (unweighted) isotonic regression of `values` under a non-decreasing constraint:
/// the vector `y` minimising `Σ (y_i - values_i)²` subject to `y_0 ≤ y_1 ≤ … ≤ y_{n-1}`.
pub fn isotonic_increasing(values: &[f64]) -> Vec<f64> {
    // Each block stores (sum, count): the pooled mean is sum / count.
    let mut block_sum: Vec<f64> = Vec::with_capacity(values.len());
    let mut block_count: Vec<usize> = Vec::with_capacity(values.len());

    for &v in values {
        block_sum.push(v);
        block_count.push(1);
        // Pool while the last block's mean is below the previous block's mean.
        while block_sum.len() >= 2 {
            let n = block_sum.len();
            let mean_last = block_sum[n - 1] / block_count[n - 1] as f64;
            let mean_prev = block_sum[n - 2] / block_count[n - 2] as f64;
            if mean_prev <= mean_last {
                break;
            }
            let (s, c) = (block_sum.pop().unwrap(), block_count.pop().unwrap());
            *block_sum.last_mut().unwrap() += s;
            *block_count.last_mut().unwrap() += c;
        }
    }

    let mut out = Vec::with_capacity(values.len());
    for (s, c) in block_sum.iter().zip(&block_count) {
        let mean = s / *c as f64;
        out.extend(std::iter::repeat_n(mean, *c));
    }
    out
}

/// Isotonic regression under a non-increasing constraint, implemented by reversing, running the
/// non-decreasing projection, and reversing back.
pub fn isotonic_decreasing(values: &[f64]) -> Vec<f64> {
    let reversed: Vec<f64> = values.iter().rev().copied().collect();
    let mut fitted = isotonic_increasing(&reversed);
    fitted.reverse();
    fitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rand_vec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn is_non_decreasing(v: &[f64]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1] + 1e-12)
    }

    #[test]
    fn already_sorted_input_is_unchanged() {
        let v = vec![1.0, 2.0, 3.0, 10.0];
        assert_eq!(isotonic_increasing(&v), v);
    }

    #[test]
    fn single_violation_is_pooled_to_mean() {
        // [1, 3, 2] -> [1, 2.5, 2.5]
        assert_eq!(isotonic_increasing(&[1.0, 3.0, 2.0]), vec![1.0, 2.5, 2.5]);
    }

    #[test]
    fn strictly_decreasing_input_becomes_global_mean() {
        let out = isotonic_increasing(&[5.0, 4.0, 3.0, 2.0, 1.0]);
        for x in out {
            assert!((x - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn textbook_example() {
        // A standard PAVA worked example.
        let v = [1.0, 2.0, 6.0, 2.0, 3.0];
        let out = isotonic_increasing(&v);
        assert!(is_non_decreasing(&out));
        // Block {6, 2, 3} pools to 11/3.
        let expected = [1.0, 2.0, 11.0 / 3.0, 11.0 / 3.0, 11.0 / 3.0];
        for (a, b) in out.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(isotonic_increasing(&[]).is_empty());
        assert_eq!(isotonic_increasing(&[7.0]), vec![7.0]);
    }

    #[test]
    fn decreasing_variant_mirrors_increasing() {
        let v = [1.0, 3.0, 2.0, 0.0];
        let out = isotonic_decreasing(&v);
        assert!(out.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        // Sum is preserved by the projection.
        assert!((out.iter().sum::<f64>() - v.iter().sum::<f64>()).abs() < 1e-9);
    }

    // Former proptest properties, now driven by a seeded RNG for deterministic offline runs.
    #[test]
    fn output_is_monotone() {
        let mut rng = StdRng::seed_from_u64(0x150_7001);
        for _ in 0..128 {
            let len = rng.gen_range(0..64usize);
            let v = rand_vec(&mut rng, len, -100.0, 100.0);
            assert!(is_non_decreasing(&isotonic_increasing(&v)));
        }
    }

    #[test]
    fn output_preserves_sum() {
        let mut rng = StdRng::seed_from_u64(0x150_7002);
        for _ in 0..128 {
            let len = rng.gen_range(1..64usize);
            let v = rand_vec(&mut rng, len, -100.0, 100.0);
            // PAVA replaces blocks by their means, so the total sum is invariant.
            let out = isotonic_increasing(&v);
            assert!((out.iter().sum::<f64>() - v.iter().sum::<f64>()).abs() < 1e-6);
        }
    }

    #[test]
    fn output_is_no_farther_than_any_constant() {
        let mut rng = StdRng::seed_from_u64(0x150_7003);
        for _ in 0..128 {
            let len = rng.gen_range(1..40usize);
            let v = rand_vec(&mut rng, len, -50.0, 50.0);
            // The projection is optimal; the constant-mean vector is feasible, so the fitted
            // vector must be at least as close in L2.
            let out = isotonic_increasing(&v);
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let err_fit: f64 = out.iter().zip(&v).map(|(a, b)| (a - b) * (a - b)).sum();
            let err_mean: f64 = v.iter().map(|b| (mean - b) * (mean - b)).sum();
            assert!(err_fit <= err_mean + 1e-6);
        }
    }

    #[test]
    fn projection_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(0x150_7004);
        for _ in 0..128 {
            let len = rng.gen_range(0..40usize);
            let v = rand_vec(&mut rng, len, -50.0, 50.0);
            let once = isotonic_increasing(&v);
            let twice = isotonic_increasing(&once);
            for (a, b) in once.iter().zip(&twice) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
