//! Isotonic regression via the pool-adjacent-violators algorithm (PAVA).
//!
//! Hay et al. ("Accurate estimation of the degree distribution of private networks", ICDM 2009)
//! release a differentially private sorted degree sequence by adding Laplace noise to the sorted
//! degrees and then post-processing the noisy sequence with *constrained inference*: the closest
//! (in L2) non-decreasing sequence to the noisy one. That projection onto the monotone cone is
//! exactly isotonic regression, computed here with the classic O(n) pool-adjacent-violators
//! algorithm. The post-processing step is what makes the noisy degree sequence accurate enough
//! to drive the moment-matching estimator in the paper.

/// The pooled-block state of a (partial) PAVA pass: a stack of maximal non-decreasing blocks,
/// each stored as `(sum, count)` so the pooled mean is `sum / count`.
///
/// The point of exposing the block form is that it is **mergeable**: the isotonic regression of
/// a concatenation `L ++ R` equals the blocks of `L` with the blocks of `R` appended one at a
/// time under the usual pooling rule — pooling can only happen at the seam, because the blocks
/// of `R` are non-decreasing among themselves. That makes PAVA decomposable over independent
/// sub-ranges: solve each sub-range, then merge the block lists left to right (the parallel
/// degree post-processing in `kronpriv-dp` does exactly this). Block sums are added when blocks
/// pool, so a merged result can differ from the element-at-a-time pass by float associativity
/// (last-ulp), but for a *fixed* decomposition it is fully deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IsotonicBlocks {
    sums: Vec<f64>,
    counts: Vec<usize>,
}

impl IsotonicBlocks {
    /// An empty block stack (the identity for [`IsotonicBlocks::merge`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the element-at-a-time PAVA pass over `values`.
    pub fn of(values: &[f64]) -> Self {
        let mut blocks = IsotonicBlocks {
            sums: Vec::with_capacity(values.len()),
            counts: Vec::with_capacity(values.len()),
        };
        for &v in values {
            blocks.push_block(v, 1);
        }
        blocks
    }

    /// Appends one already-pooled block and restores the invariant by pooling backwards while
    /// the last block's mean is below the previous block's mean.
    fn push_block(&mut self, sum: f64, count: usize) {
        self.sums.push(sum);
        self.counts.push(count);
        while self.sums.len() >= 2 {
            let n = self.sums.len();
            let mean_last = self.sums[n - 1] / self.counts[n - 1] as f64;
            let mean_prev = self.sums[n - 2] / self.counts[n - 2] as f64;
            if mean_prev <= mean_last {
                break;
            }
            let (s, c) = (
                self.sums.pop().expect("len >= 2 checked by the loop condition"),
                self.counts.pop().expect("counts stays parallel to sums"),
            );
            *self.sums.last_mut().expect("one block remains after the pop") += s;
            *self.counts.last_mut().expect("counts stays parallel to sums") += c;
        }
    }

    /// Appends the blocks of `right` (the solution of the values immediately following this
    /// stack's values) and returns the combined stack — the PAVA solution of the concatenation.
    pub fn merge(mut self, right: IsotonicBlocks) -> Self {
        for (s, c) in right.sums.into_iter().zip(right.counts) {
            self.push_block(s, c);
        }
        self
    }

    /// Total number of input values covered by the stack.
    pub fn len(&self) -> usize {
        self.counts.iter().sum()
    }

    /// True if no values have been pushed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Expands the block stack into the fitted vector: each block's mean, repeated.
    pub fn expand(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        for (s, c) in self.sums.iter().zip(&self.counts) {
            let mean = s / *c as f64;
            out.extend(std::iter::repeat_n(mean, *c));
        }
        out
    }
}

/// Computes the (unweighted) isotonic regression of `values` under a non-decreasing constraint:
/// the vector `y` minimising `Σ (y_i - values_i)²` subject to `y_0 ≤ y_1 ≤ … ≤ y_{n-1}`.
pub fn isotonic_increasing(values: &[f64]) -> Vec<f64> {
    IsotonicBlocks::of(values).expand()
}

/// Isotonic regression under a non-increasing constraint, implemented by reversing, running the
/// non-decreasing projection, and reversing back.
pub fn isotonic_decreasing(values: &[f64]) -> Vec<f64> {
    let reversed: Vec<f64> = values.iter().rev().copied().collect();
    let mut fitted = isotonic_increasing(&reversed);
    fitted.reverse();
    fitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rand_vec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn is_non_decreasing(v: &[f64]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1] + 1e-12)
    }

    #[test]
    fn already_sorted_input_is_unchanged() {
        let v = vec![1.0, 2.0, 3.0, 10.0];
        assert_eq!(isotonic_increasing(&v), v);
    }

    #[test]
    fn single_violation_is_pooled_to_mean() {
        // [1, 3, 2] -> [1, 2.5, 2.5]
        assert_eq!(isotonic_increasing(&[1.0, 3.0, 2.0]), vec![1.0, 2.5, 2.5]);
    }

    #[test]
    fn strictly_decreasing_input_becomes_global_mean() {
        let out = isotonic_increasing(&[5.0, 4.0, 3.0, 2.0, 1.0]);
        for x in out {
            assert!((x - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn textbook_example() {
        // A standard PAVA worked example.
        let v = [1.0, 2.0, 6.0, 2.0, 3.0];
        let out = isotonic_increasing(&v);
        assert!(is_non_decreasing(&out));
        // Block {6, 2, 3} pools to 11/3.
        let expected = [1.0, 2.0, 11.0 / 3.0, 11.0 / 3.0, 11.0 / 3.0];
        for (a, b) in out.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(isotonic_increasing(&[]).is_empty());
        assert_eq!(isotonic_increasing(&[7.0]), vec![7.0]);
    }

    #[test]
    fn decreasing_variant_mirrors_increasing() {
        let v = [1.0, 3.0, 2.0, 0.0];
        let out = isotonic_decreasing(&v);
        assert!(out.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        // Sum is preserved by the projection.
        assert!((out.iter().sum::<f64>() - v.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn merged_blocks_match_the_sequential_pass_on_any_split() {
        // The mergeability claim behind the parallel degree post-processing: solving two halves
        // and merging the block stacks equals the one-pass solution up to float associativity.
        let mut rng = StdRng::seed_from_u64(0x150_7005);
        for _ in 0..64 {
            let len = rng.gen_range(2..80usize);
            let v = rand_vec(&mut rng, len, -100.0, 100.0);
            let split = rng.gen_range(1..len);
            let merged =
                IsotonicBlocks::of(&v[..split]).merge(IsotonicBlocks::of(&v[split..])).expand();
            let reference = isotonic_increasing(&v);
            assert_eq!(merged.len(), reference.len());
            for (a, b) in merged.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-9, "split {split}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let v = [3.0, 1.0, 2.0, 0.5];
        let blocks = IsotonicBlocks::of(&v);
        assert_eq!(blocks.clone().merge(IsotonicBlocks::new()), blocks);
        assert_eq!(IsotonicBlocks::new().merge(blocks.clone()), blocks);
        assert_eq!(blocks.len(), 4);
        assert!(!blocks.is_empty());
        assert!(IsotonicBlocks::new().is_empty());
    }

    // Former proptest properties, now driven by a seeded RNG for deterministic offline runs.
    #[test]
    fn output_is_monotone() {
        let mut rng = StdRng::seed_from_u64(0x150_7001);
        for _ in 0..128 {
            let len = rng.gen_range(0..64usize);
            let v = rand_vec(&mut rng, len, -100.0, 100.0);
            assert!(is_non_decreasing(&isotonic_increasing(&v)));
        }
    }

    #[test]
    fn output_preserves_sum() {
        let mut rng = StdRng::seed_from_u64(0x150_7002);
        for _ in 0..128 {
            let len = rng.gen_range(1..64usize);
            let v = rand_vec(&mut rng, len, -100.0, 100.0);
            // PAVA replaces blocks by their means, so the total sum is invariant.
            let out = isotonic_increasing(&v);
            assert!((out.iter().sum::<f64>() - v.iter().sum::<f64>()).abs() < 1e-6);
        }
    }

    #[test]
    fn output_is_no_farther_than_any_constant() {
        let mut rng = StdRng::seed_from_u64(0x150_7003);
        for _ in 0..128 {
            let len = rng.gen_range(1..40usize);
            let v = rand_vec(&mut rng, len, -50.0, 50.0);
            // The projection is optimal; the constant-mean vector is feasible, so the fitted
            // vector must be at least as close in L2.
            let out = isotonic_increasing(&v);
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let err_fit: f64 = out.iter().zip(&v).map(|(a, b)| (a - b) * (a - b)).sum();
            let err_mean: f64 = v.iter().map(|b| (mean - b) * (mean - b)).sum();
            assert!(err_fit <= err_mean + 1e-6);
        }
    }

    #[test]
    fn projection_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(0x150_7004);
        for _ in 0..128 {
            let len = rng.gen_range(0..40usize);
            let v = rand_vec(&mut rng, len, -50.0, 50.0);
            let once = isotonic_increasing(&v);
            let twice = isotonic_increasing(&once);
            for (a, b) in once.iter().zip(&twice) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
