//! Compressed sparse row (CSR) matrices.
//!
//! The only dense structure the paper's evaluation needs from the adjacency matrix is its action
//! on vectors (for the scree plot and network-value statistics), so a minimal CSR representation
//! with a matrix–vector product is sufficient. Construction goes through a triplet
//! (`row, col, value`) list; duplicate entries are summed, which matches the usual sparse
//! assembly convention.

use crate::vector::dot;

/// A sparse matrix in compressed sparse row format.
///
/// The matrix is not required to be symmetric, but all eigen-solvers in this crate assume it is;
/// [`CsrMatrix::is_symmetric`] is available as a debug check.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from triplets. Duplicate `(row, col)` entries are summed.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds for {rows}x{cols}");
        }
        // Count entries per row, then prefix-sum into row_ptr.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0u32; triplets.len()];
        let mut values = vec![0.0f64; triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            let slot = next[r];
            col_idx[slot] = c as u32;
            values[slot] = v;
            next[r] += 1;
        }
        let mut m = CsrMatrix { rows, cols, row_ptr: counts, col_idx, values };
        m.sort_and_merge_rows();
        m
    }

    /// Builds an adjacency-style CSR matrix (all values 1.0) from undirected edges, inserting
    /// both `(u, v)` and `(v, u)`.
    pub fn symmetric_adjacency(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut triplets = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            triplets.push((u as usize, v as usize, 1.0));
            if u != v {
                triplets.push((v as usize, u as usize, 1.0));
            }
        }
        Self::from_triplets(n, n, &triplets)
    }

    fn sort_and_merge_rows(&mut self) {
        let mut new_col = Vec::with_capacity(self.col_idx.len());
        let mut new_val = Vec::with_capacity(self.values.len());
        let mut new_ptr = vec![0usize; self.rows + 1];
        for r in 0..self.rows {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut row: Vec<(u32, f64)> = self.col_idx[lo..hi]
                .iter()
                .copied()
                .zip(self.values[lo..hi].iter().copied())
                .collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut merged: Vec<(u32, f64)> = Vec::with_capacity(row.len());
            for (c, v) in row {
                match merged.last_mut() {
                    Some((lc, lv)) if *lc == c => *lv += v,
                    _ => merged.push((c, v)),
                }
            }
            for (c, v) in merged {
                new_col.push(c);
                new_val.push(v);
            }
            new_ptr[r + 1] = new_col.len();
        }
        self.col_idx = new_col;
        self.values = new_val;
        self.row_ptr = new_ptr;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the stored entries `(column, value)` of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]).map(|(&c, &v)| (c as usize, v))
    }

    /// Fetches the value at `(r, c)`, returning 0.0 for structural zeros.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.row(r).find(|&(col, _)| col == c).map_or(0.0, |(_, v)| v)
    }

    /// Computes `y = A x`.
    ///
    /// # Panics
    /// Panics if dimensions do not match.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec: x has wrong length");
        assert_eq!(y.len(), self.rows, "mul_vec: y has wrong length");
        for (r, out) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *out = acc;
        }
    }

    /// Computes and returns `A x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Rayleigh quotient `xᵀ A x / xᵀ x` for a non-zero vector `x`.
    pub fn rayleigh_quotient(&self, x: &[f64]) -> f64 {
        let ax = self.mul_vec(x);
        dot(x, &ax) / dot(x, x)
    }

    /// Checks structural + numerical symmetry (within `tol`).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                if (self.get(c, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of the diagonal entries.
    pub fn trace(&self) -> f64 {
        (0..self.rows.min(self.cols)).map(|i| self.get(i, i)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_matrix() -> CsrMatrix {
        // [ 2 1 0 ]
        // [ 1 0 3 ]
        // [ 0 3 1 ]
        CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 2, 3.0), (2, 1, 3.0), (2, 2, 1.0)],
        )
    }

    #[test]
    fn dimensions_and_nnz_are_reported() {
        let m = small_matrix();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 6);
    }

    #[test]
    fn get_returns_stored_and_zero_entries() {
        let m = small_matrix();
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.get(0, 1), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn rows_are_sorted_by_column() {
        let m = CsrMatrix::from_triplets(1, 4, &[(0, 3, 1.0), (0, 0, 2.0), (0, 2, 3.0)]);
        let cols: Vec<usize> = m.row(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 2, 3]);
    }

    #[test]
    fn mul_vec_matches_dense_computation() {
        let m = small_matrix();
        let y = m.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![4.0, 10.0, 9.0]);
    }

    #[test]
    fn symmetric_adjacency_inserts_both_directions() {
        let m = CsrMatrix::symmetric_adjacency(3, &[(0, 1), (1, 2)]);
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(2, 1), 1.0);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn self_loop_in_adjacency_is_stored_once() {
        let m = CsrMatrix::symmetric_adjacency(2, &[(0, 0)]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn small_matrix_is_symmetric() {
        assert!(small_matrix().is_symmetric(1e-12));
    }

    #[test]
    fn asymmetric_matrix_is_detected() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!m.is_symmetric(1e-12));
    }

    #[test]
    fn rayleigh_quotient_of_eigenvector_is_eigenvalue() {
        // Identity-like diagonal matrix: Rayleigh quotient of any axis vector is the diagonal.
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (1, 1, 9.0)]);
        assert!((m.rayleigh_quotient(&[1.0, 0.0]) - 4.0).abs() < 1e-12);
        assert!((m.rayleigh_quotient(&[0.0, 1.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_norm_and_trace() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 3.0), (1, 1, 4.0)]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((m.trace() - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_triplet_panics() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    // Deterministic replacements for the former proptest properties: a seeded RNG drives the
    // same case generation, so failures reproduce exactly.
    #[test]
    fn matvec_is_linear() {
        let mut rng = StdRng::seed_from_u64(0xC5_7001);
        for _ in 0..128 {
            let nnz = rng.gen_range(1..20usize);
            let vals: Vec<(usize, usize, f64)> = (0..nnz)
                .map(|_| (rng.gen_range(0..6), rng.gen_range(0..6), rng.gen_range(-5.0..5.0)))
                .collect();
            let x: Vec<f64> = (0..6).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let z: Vec<f64> = (0..6).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let alpha: f64 = rng.gen_range(-2.0..2.0);
            let m = CsrMatrix::from_triplets(6, 6, &vals);
            // A(x + alpha z) == Ax + alpha Az
            let combined: Vec<f64> = x.iter().zip(&z).map(|(a, b)| a + alpha * b).collect();
            let lhs = m.mul_vec(&combined);
            let ax = m.mul_vec(&x);
            let az = m.mul_vec(&z);
            for i in 0..6 {
                assert!((lhs[i] - (ax[i] + alpha * az[i])).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn symmetric_adjacency_is_always_symmetric() {
        let mut rng = StdRng::seed_from_u64(0xC5_7002);
        for _ in 0..128 {
            let len = rng.gen_range(0..60usize);
            let edges: Vec<(u32, u32)> =
                (0..len).map(|_| (rng.gen_range(0..20u32), rng.gen_range(0..20u32))).collect();
            let m = CsrMatrix::symmetric_adjacency(20, &edges);
            assert!(m.is_symmetric(0.0));
        }
    }
}
