//! Eigenvalues of a symmetric tridiagonal matrix via the implicit QL algorithm.
//!
//! The Lanczos process reduces a large sparse symmetric matrix to a small tridiagonal matrix
//! whose eigenvalues (Ritz values) approximate the extreme eigenvalues of the original matrix.
//! This module solves that small dense problem. The implementation follows the classic
//! `tqli`-style implicit QL iteration with Wilkinson shifts, eigenvalues only.

/// Computes all eigenvalues of the symmetric tridiagonal matrix with diagonal `diag` and
/// off-diagonal `off` (where `off[i]` couples rows `i` and `i+1`).
///
/// Returns the eigenvalues sorted in decreasing order.
///
/// # Panics
/// Panics if `off.len() + 1 != diag.len()` (for non-empty matrices) or if the QL iteration fails
/// to converge, which for well-formed finite input does not happen in practice.
pub fn symmetric_tridiagonal_eigenvalues(diag: &[f64], off: &[f64]) -> Vec<f64> {
    let n = diag.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![diag[0]];
    }
    assert_eq!(off.len(), n - 1, "off-diagonal must have length n-1");

    let mut d = diag.to_vec();
    // e is padded to length n with a trailing zero, as in the classic algorithm.
    let mut e = off.to_vec();
    e.push(0.0);

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split the problem.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 100, "implicit QL failed to converge");

            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                f = (d[i] - g) * s + 2.0 * c * b;
                p = s * f;
                d[i + 1] = g + p;
                g = c * f - b;
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    d.sort_by(|a, b| b.total_cmp(a));
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn empty_matrix_has_no_eigenvalues() {
        assert!(symmetric_tridiagonal_eigenvalues(&[], &[]).is_empty());
    }

    #[test]
    fn one_by_one_matrix() {
        assert_eq!(symmetric_tridiagonal_eigenvalues(&[3.5], &[]), vec![3.5]);
    }

    #[test]
    fn diagonal_matrix_returns_sorted_diagonal() {
        let ev = symmetric_tridiagonal_eigenvalues(&[1.0, 4.0, 2.0], &[0.0, 0.0]);
        assert_close(&ev, &[4.0, 2.0, 1.0], 1e-12);
    }

    #[test]
    fn two_by_two_matches_quadratic_formula() {
        // [[2, 1], [1, 3]] has eigenvalues (5 ± sqrt(5)) / 2.
        let ev = symmetric_tridiagonal_eigenvalues(&[2.0, 3.0], &[1.0]);
        let s5 = 5.0f64.sqrt();
        assert_close(&ev, &[(5.0 + s5) / 2.0, (5.0 - s5) / 2.0], 1e-10);
    }

    #[test]
    fn path_graph_tridiagonal_eigenvalues_match_cosine_formula() {
        // Adjacency of the path graph on n nodes as a tridiagonal matrix: diag 0, off 1.
        // Eigenvalues: 2 cos(k pi / (n+1)), k = 1..n.
        let n = 8;
        let diag = vec![0.0; n];
        let off = vec![1.0; n - 1];
        let ev = symmetric_tridiagonal_eigenvalues(&diag, &off);
        let mut expected: Vec<f64> = (1..=n)
            .map(|k| 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        expected.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_close(&ev, &expected, 1e-9);
    }

    #[test]
    fn trace_is_preserved() {
        let diag = [1.0, -2.0, 0.5, 3.0];
        let off = [0.7, -1.3, 2.0];
        let ev = symmetric_tridiagonal_eigenvalues(&diag, &off);
        let trace: f64 = diag.iter().sum();
        let ev_sum: f64 = ev.iter().sum();
        assert!((trace - ev_sum).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length n-1")]
    fn mismatched_lengths_panic() {
        let _ = symmetric_tridiagonal_eigenvalues(&[1.0, 2.0], &[1.0, 1.0]);
    }

    // Former proptest properties, now driven by a seeded RNG for deterministic offline runs.
    #[test]
    fn eigenvalue_sum_equals_trace() {
        let mut rng = StdRng::seed_from_u64(0x781_7001);
        for _ in 0..128 {
            let len = rng.gen_range(2..12usize);
            let diag: Vec<f64> = (0..len).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let off: Vec<f64> = diag.windows(2).map(|w| (w[0] - w[1]) * 0.3).collect();
            let ev = symmetric_tridiagonal_eigenvalues(&diag, &off);
            let trace: f64 = diag.iter().sum();
            let ev_sum: f64 = ev.iter().sum();
            assert!((trace - ev_sum).abs() < 1e-7);
        }
    }

    #[test]
    fn eigenvalue_square_sum_equals_frobenius() {
        let mut rng = StdRng::seed_from_u64(0x781_7002);
        for _ in 0..128 {
            let len = rng.gen_range(2..10usize);
            let diag: Vec<f64> = (0..len).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let off: Vec<f64> = diag.windows(2).map(|w| w[0] * 0.5 + 0.1 * w[1]).collect();
            let ev = symmetric_tridiagonal_eigenvalues(&diag, &off);
            let frob: f64 = diag.iter().map(|d| d * d).sum::<f64>()
                + 2.0 * off.iter().map(|e| e * e).sum::<f64>();
            let ev_sq: f64 = ev.iter().map(|v| v * v).sum();
            assert!((frob - ev_sq).abs() < 1e-6 * frob.max(1.0));
        }
    }
}
