//! [`ToJson`] / [`FromJson`] implementations for the standard types the workspace serializes.

use crate::{Json, JsonParseError};
use std::collections::BTreeMap;

/// Conversion into a [`Json`] value — the stand-in for `serde::Serialize`.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion out of a [`Json`] value — the stand-in for `serde::Deserialize`.
pub trait FromJson: Sized {
    /// Reconstructs a value from its JSON representation.
    fn from_json(value: &Json) -> Result<Self, JsonParseError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self, JsonParseError> {
        Ok(value.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonParseError> {
        value
            .as_bool()
            .ok_or_else(|| JsonParseError::unexpected("bool", &value.to_compact_string()))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonParseError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonParseError::unexpected("string", &value.to_compact_string()))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::String(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

macro_rules! impl_json_float {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Number(*self as f64)
            }
        }

        impl FromJson for $ty {
            fn from_json(value: &Json) -> Result<Self, JsonParseError> {
                let x = value.as_f64().ok_or_else(|| {
                    JsonParseError::unexpected("number", &value.to_compact_string())
                })?;
                Ok(x as $ty)
            }
        }
    )+};
}

impl_json_float!(f64, f32);

macro_rules! impl_json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Number(*self as f64)
            }
        }

        impl FromJson for $ty {
            fn from_json(value: &Json) -> Result<Self, JsonParseError> {
                let x = value.as_f64().ok_or_else(|| {
                    JsonParseError::unexpected("number", &value.to_compact_string())
                })?;
                // Strict integer semantics, matching serde_json: reject fractional values and
                // values outside the target range instead of truncating/saturating. The
                // explicit bounds check is needed in addition to the cast round-trip because at
                // the saturation boundary (e.g. x = 2^64 for u64) the saturated MAX rounds back
                // to exactly x, so the round-trip alone would accept it. `MAX as f64 + 1.0` is
                // exactly 2^bits for every target type, so the half-open bound is exact.
                let lower = <$ty>::MIN as f64;
                let upper = (<$ty>::MAX as f64) + 1.0;
                let cast = x as $ty;
                if x >= lower && x < upper && cast as f64 == x {
                    Ok(cast)
                } else {
                    Err(JsonParseError::unexpected(
                        concat!("integer (", stringify!($ty), ")"),
                        &value.to_compact_string(),
                    ))
                }
            }
        }
    )+};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(inner) => inner.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonParseError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonParseError> {
        value
            .as_array()
            .ok_or_else(|| JsonParseError::unexpected("array", &value.to_compact_string()))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(value: &Json) -> Result<Self, JsonParseError> {
        let items: Vec<T> = Vec::from_json(value)?;
        let len = items.len();
        items.try_into().map_err(|_| {
            JsonParseError::unexpected(&format!("array of length {N}"), &format!("length {len}"))
        })
    }
}

macro_rules! impl_json_tuple {
    ($(($($name:ident : $index:tt),+)),+ $(,)?) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$( self.$index.to_json() ),+])
            }
        }

        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(value: &Json) -> Result<Self, JsonParseError> {
                const LEN: usize = 0 $(+ { let _ = $index; 1 })+;
                let items = value.as_array().ok_or_else(|| {
                    JsonParseError::unexpected("array (tuple)", &value.to_compact_string())
                })?;
                if items.len() != LEN {
                    return Err(JsonParseError::unexpected(
                        &format!("tuple of length {LEN}"),
                        &format!("length {}", items.len()),
                    ));
                }
                Ok(($( FromJson::from_json(&items[$index])? ,)+))
            }
        }
    )+};
}

impl_json_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(value: &Json) -> Result<Self, JsonParseError> {
        match value {
            Json::Object(fields) => {
                fields.iter().map(|(k, v)| Ok((k.clone(), V::from_json(v)?))).collect()
            }
            other => Err(JsonParseError::unexpected("object", &other.to_compact_string())),
        }
    }
}
