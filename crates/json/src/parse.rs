//! A strict recursive-descent JSON parser (RFC 8259): no comments, no trailing commas, no
//! single quotes, exactly one top-level value.

use crate::Json;
use std::fmt;

/// Error produced by [`Json::parse`] or [`crate::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    message: String,
}

impl JsonParseError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// Error for a struct field absent from the parsed object.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self::new(format!("{ty}: missing field `{field}`"))
    }

    /// Error for a value of the wrong JSON type.
    pub fn unexpected(expected: &str, got: &str) -> Self {
        Self::new(format!("expected {expected}, got {got}"))
    }
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum container nesting depth, matching serde_json's default recursion limit. Without it a
/// degenerate document like `"[".repeat(100_000)` would overflow the parser's stack (abort)
/// instead of returning an error.
const MAX_DEPTH: usize = 128;

pub(crate) fn parse(text: &str) -> Result<Json, JsonParseError> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("document exceeds maximum nesting depth"));
        }
        Ok(())
    }

    fn parse_object(&mut self) -> Result<Json, JsonParseError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => {
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonParseError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => {
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (unescaped, non-quote) bytes in one go.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.parse_unicode_escape()?),
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let code = self.parse_hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by `\uXXXX` low surrogate.
        if (0xD800..0xDC00).contains(&code) {
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.error("unpaired surrogate"));
            }
            let low = self.parse_hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.error("invalid low surrogate"));
            }
            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            char::from_u32(combined).ok_or_else(|| self.error("invalid surrogate pair"))
        } else {
            char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.error("invalid \\u escape")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        let int_digits = self.consume_digits();
        if int_digits == 0 {
            return Err(self.error("expected digits in number"));
        }
        // RFC 8259: the integer part is `0` or a non-zero digit followed by digits — no
        // leading zeros.
        if int_digits > 1 && self.bytes[int_start] == b'0' {
            return Err(self.error("leading zeros are not allowed in numbers"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.consume_digits() == 0 {
                return Err(self.error("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.consume_digits() == 0 {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>().map(Json::Number).map_err(|_| self.error("number out of range"))
    }

    fn consume_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}
