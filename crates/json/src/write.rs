//! Compact and pretty JSON writers.

use crate::Json;

/// Emits a JSON number. Finite floats that are mathematically integers (within `i64`) print
/// without a trailing `.0`, matching `serde_json`; everything else uses Rust's shortest
/// round-trip formatting. Non-finite values become `null`, also matching `serde_json`.
fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.22e18 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x:?}"));
    }
}

/// Emits a JSON string literal with the escapes RFC 8259 requires.
fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn write_compact(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Number(x) => write_number(*x, out),
        Json::String(s) => write_string(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_pretty(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match value {
        Json::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Json::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                write_string(key, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}
