//! `kronpriv-json` — a dependency-free JSON layer replacing `serde`/`serde_json` so the
//! workspace builds fully offline.
//!
//! The workspace's serialization needs are modest: the bench harness writes experiment results
//! as JSON documents, and a handful of model types round-trip through JSON in tests. Rather
//! than depending on serde (unavailable without crates.io access), this crate provides:
//!
//! * [`Json`] — an owned JSON value with a compact writer, a pretty writer and a strict parser,
//! * [`ToJson`] / [`FromJson`] — conversion traits implemented for the primitives, `Vec`,
//!   `Option`, arrays, tuples and maps the workspace serializes,
//! * [`impl_json_struct!`] / [`impl_json_enum!`] — declarative macros that stand in for
//!   `#[derive(Serialize, Deserialize)]` on plain structs and fieldless enums.
//!
//! Numbers are emitted with Rust's shortest round-trip float formatting, so
//! `Json::parse(&value.to_json().to_string())` reproduces every finite `f64` exactly.
//! Non-finite floats serialize as `null`, matching `serde_json`'s behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod parse;
mod write;

pub use convert::{FromJson, ToJson};
pub use parse::JsonParseError;

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON document. Object keys keep insertion order so emitted documents read in the
/// same order as the Rust struct definitions that produced them.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number. Stored as `f64`, which is exact for the integer ranges the workspace
    /// emits (graph counts fit in 53 bits).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document from text.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        parse::parse(text)
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        write::write_compact(self, &mut out);
        out
    }

    /// Pretty rendering with two-space indentation (the `serde_json::to_string_pretty` look).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write::write_pretty(self, 0, &mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

/// Serializes a value to compact JSON text (the `serde_json::to_string` shape).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_compact_string()
}

/// Serializes a value to pretty JSON text (the `serde_json::to_string_pretty` shape).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_pretty_string()
}

/// Deserializes a value from JSON text (the `serde_json::from_str` shape).
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonParseError> {
    T::from_json(&Json::parse(text)?)
}

/// Convenience alias used by callers that want a string-keyed map.
pub type JsonMap = BTreeMap<String, Json>;

/// Implements [`ToJson`] and [`FromJson`] for a plain struct with named public fields — the
/// stand-in for `#[derive(Serialize, Deserialize)]`.
///
/// ```
/// # use kronpriv_json::{impl_json_struct, from_str, to_string};
/// #[derive(Debug, PartialEq)]
/// struct Point { x: f64, y: f64 }
/// impl_json_struct!(Point { x, y });
///
/// let p = Point { x: 1.0, y: -2.5 };
/// let back: Point = from_str(&to_string(&p)).unwrap();
/// assert_eq!(back, p);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)), )+
                ])
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonParseError> {
                Ok($ty {
                    $( $field: $crate::FromJson::from_json(
                        value.get(stringify!($field)).ok_or_else(|| {
                            $crate::JsonParseError::missing_field(
                                stringify!($ty),
                                stringify!($field),
                            )
                        })?,
                    )?, )+
                })
            }
        }
    };
}

/// Like [`impl_json_struct!`], but a field absent from the parsed object deserializes as JSON
/// `null` instead of erroring — the serde `#[serde(default)]`-on-`Option` shape. Use it for
/// request types whose `Option` fields callers may simply omit; unknown fields are ignored by
/// both macros (serde's default tolerance).
///
/// ```
/// # use kronpriv_json::{impl_json_struct_lenient, from_str};
/// #[derive(Debug, PartialEq)]
/// struct Req { seed: u64, tag: Option<String> }
/// impl_json_struct_lenient!(Req { seed, tag });
///
/// let r: Req = from_str("{\"seed\": 7, \"extra\": true}").unwrap();
/// assert_eq!(r, Req { seed: 7, tag: None });
/// ```
#[macro_export]
macro_rules! impl_json_struct_lenient {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)), )+
                ])
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonParseError> {
                Ok($ty {
                    $( $field: $crate::FromJson::from_json(
                        value.get(stringify!($field)).unwrap_or(&$crate::Json::Null),
                    )?, )+
                })
            }
        }
    };
}

/// Like [`impl_json_struct!`], but fields in the `defaults` block may be absent from the
/// parsed object and then take the given default — the serde `#[serde(default)]` shape for
/// non-`Option` fields. This is the wire-compatibility tool for *adding* a field to an
/// established document type: old documents (without the field) keep parsing, new documents
/// round-trip it. Serialization always emits every field, required first, defaulted last.
///
/// ```
/// # use kronpriv_json::{impl_json_struct_with_defaults, from_str, to_string};
/// #[derive(Debug, PartialEq)]
/// struct Opts { size: u64, threads: u64 }
/// impl_json_struct_with_defaults!(Opts {
///     required: { size },
///     defaults: { threads: 0 },
/// });
///
/// let old: Opts = from_str("{\"size\": 7}").unwrap();
/// assert_eq!(old, Opts { size: 7, threads: 0 });
/// let new: Opts = from_str(&to_string(&Opts { size: 7, threads: 4 })).unwrap();
/// assert_eq!(new.threads, 4);
/// ```
#[macro_export]
macro_rules! impl_json_struct_with_defaults {
    ($ty:ident {
        required: { $($field:ident),+ $(,)? },
        defaults: { $($dfield:ident: $default:expr),+ $(,)? } $(,)?
    }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)), )+
                    $( (stringify!($dfield).to_string(), $crate::ToJson::to_json(&self.$dfield)), )+
                ])
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonParseError> {
                Ok($ty {
                    $( $field: $crate::FromJson::from_json(
                        value.get(stringify!($field)).ok_or_else(|| {
                            $crate::JsonParseError::missing_field(
                                stringify!($ty),
                                stringify!($field),
                            )
                        })?,
                    )?, )+
                    $( $dfield: match value.get(stringify!($dfield)) {
                        Some(raw) => $crate::FromJson::from_json(raw)?,
                        None => $default,
                    }, )+
                })
            }
        }
    };
}

/// Like [`impl_json_struct!`], but splits the fields into a `released` block that serializes
/// and a `redacted` block that **never** does — the carrier for types that must hold a
/// sensitive value in memory (for calibration, testing or diagnostics) without ever letting it
/// cross the `(ε, δ)`-DP release boundary. Serialization emits only the released fields;
/// deserialization fills each redacted field with its stated default, so a parsed value is
/// honest about not knowing the sensitive quantity. `kronpriv-lint`'s `privacy-serialize` rule
/// checks only the `released` block of this macro, which makes it the one sanctioned way to
/// keep a sensitive field on a serializable struct.
///
/// ```
/// # use kronpriv_json::{impl_json_struct_redacted, from_str, to_string};
/// #[derive(Debug)]
/// struct Release { stat: f64, secret: f64 }
/// impl_json_struct_redacted!(Release {
///     released: { stat },
///     redacted: { secret: f64::NAN },
/// });
///
/// let s = to_string(&Release { stat: 1.0, secret: 42.0 });
/// assert!(!s.contains("secret"));
/// let back: Release = from_str(&s).unwrap();
/// assert_eq!(back.stat, 1.0);
/// assert!(back.secret.is_nan());
/// ```
#[macro_export]
macro_rules! impl_json_struct_redacted {
    ($ty:ident {
        released: { $($field:ident),+ $(,)? },
        redacted: { $($rfield:ident: $default:expr),+ $(,)? } $(,)?
    }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)), )+
                ])
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonParseError> {
                Ok($ty {
                    $( $field: $crate::FromJson::from_json(
                        value.get(stringify!($field)).ok_or_else(|| {
                            $crate::JsonParseError::missing_field(
                                stringify!($ty),
                                stringify!($field),
                            )
                        })?,
                    )?, )+
                    // Redacted fields are never read from the document, even if present: a
                    // document cannot smuggle a sensitive value into a parsed struct.
                    $( $rfield: $default, )+
                })
            }
        }
    };
}

/// Implements only [`ToJson`] for a plain struct — for types that cannot round-trip (e.g.
/// `&'static str` fields, which have no owned deserialization target).
#[macro_export]
macro_rules! impl_to_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)), )+
                ])
            }
        }
    };
}

/// Implements [`ToJson`] and [`FromJson`] for a fieldless enum, serialized as the variant name
/// string — the serde external tagging of unit variants.
///
/// ```
/// # use kronpriv_json::{impl_json_enum, from_str, to_string};
/// #[derive(Debug, PartialEq, Clone, Copy)]
/// enum Norm { L1, L2 }
/// impl_json_enum!(Norm { L1, L2 });
///
/// assert_eq!(to_string(&Norm::L2), "\"L2\"");
/// let back: Norm = from_str("\"L1\"").unwrap();
/// assert_eq!(back, Norm::L1);
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                let name = match self {
                    $( $ty::$variant => stringify!($variant), )+
                };
                $crate::Json::String(name.to_string())
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonParseError> {
                match value.as_str() {
                    $( Some(stringify!($variant)) => Ok($ty::$variant), )+
                    _ => Err($crate::JsonParseError::unexpected(
                        stringify!($ty),
                        &value.to_compact_string(),
                    )),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Nested {
        tag: String,
        values: Vec<f64>,
        flag: Option<bool>,
    }
    impl_json_struct!(Nested { tag, values, flag });

    #[derive(Debug, PartialEq, Clone, Copy)]
    enum Kind {
        Alpha,
        Beta,
    }
    impl_json_enum!(Kind { Alpha, Beta });

    #[test]
    fn struct_round_trip_preserves_everything() {
        let v = Nested {
            tag: "a \"quoted\" name\nwith newline".to_string(),
            values: vec![0.1, -1e-12, 3.0, f64::MAX],
            flag: None,
        };
        let text = to_string(&v);
        let back: Nested = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Nested { tag: "x".into(), values: vec![1.0, 2.0], flag: Some(true) };
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  \"tag\""));
        assert!(pretty.contains("\"flag\": true"));
        let back: Nested = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn enum_round_trip() {
        for kind in [Kind::Alpha, Kind::Beta] {
            let back: Kind = from_str(&to_string(&kind)).unwrap();
            assert_eq!(back, kind);
        }
        assert!(from_str::<Kind>("\"Gamma\"").is_err());
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = from_str::<Nested>("{\"tag\": \"x\"}").unwrap_err();
        assert!(err.to_string().contains("values"), "{err}");
    }

    #[derive(Debug, PartialEq)]
    struct Lenient {
        seed: u64,
        label: Option<String>,
    }
    impl_json_struct_lenient!(Lenient { seed, label });

    #[test]
    fn lenient_structs_default_missing_fields_to_null() {
        let v: Lenient = from_str("{\"seed\": 7}").unwrap();
        assert_eq!(v, Lenient { seed: 7, label: None });
        // Required (non-Option) fields still fail when absent, via the null-type mismatch.
        assert!(from_str::<Lenient>("{\"label\": \"x\"}").is_err());
        // Unknown fields are ignored, and present fields still round-trip.
        let v: Lenient = from_str("{\"seed\": 1, \"label\": \"a\", \"junk\": [1,2]}").unwrap();
        assert_eq!(v, Lenient { seed: 1, label: Some("a".into()) });
        let back: Lenient = from_str(&to_string(&v)).unwrap();
        assert_eq!(back, v);
    }

    #[derive(Debug, PartialEq)]
    struct Versioned {
        name: String,
        retries: u32,
    }
    impl_json_struct_with_defaults!(Versioned {
        required: { name },
        defaults: { retries: 3 },
    });

    #[test]
    fn defaulted_fields_fill_in_when_absent_and_round_trip_when_present() {
        let old: Versioned = from_str("{\"name\": \"a\"}").unwrap();
        assert_eq!(old, Versioned { name: "a".into(), retries: 3 });
        let v = Versioned { name: "b".into(), retries: 9 };
        let back: Versioned = from_str(&to_string(&v)).unwrap();
        assert_eq!(back, v);
        // Required fields are still required...
        assert!(from_str::<Versioned>("{\"retries\": 1}").is_err());
        // ...and a present-but-mistyped defaulted field is an error, not the default.
        assert!(from_str::<Versioned>("{\"name\": \"a\", \"retries\": \"x\"}").is_err());
    }

    #[test]
    fn integers_survive_exactly() {
        let values: Vec<u64> = vec![0, 1, 1 << 52, (1 << 53) - 1];
        let back: Vec<u64> = from_str(&to_string(&values)).unwrap();
        assert_eq!(back, values);
    }

    /// Regression: integer deserialization must reject fractional, negative-into-unsigned and
    /// out-of-range numbers (serde_json semantics) instead of silently truncating/saturating.
    #[test]
    fn integer_parsing_is_strict() {
        assert!(from_str::<usize>("3.7").is_err());
        assert!(from_str::<u64>("-5").is_err());
        assert!(from_str::<u32>("1e20").is_err());
        assert!(from_str::<i8>("200").is_err());
        // Saturation boundaries: 2^64 and 2^63 round-trip through the saturated MAX in f64, so
        // a bare cast-and-compare would accept them; the bounds check must reject.
        assert!(from_str::<u64>("18446744073709551616").is_err());
        assert!(from_str::<i64>("9223372036854775808").is_err());
        assert!(from_str::<i64>("-9223372036854775808").is_ok());
        assert_eq!(from_str::<i64>("-5").unwrap(), -5);
        assert_eq!(from_str::<u32>("4294967295").unwrap(), u32::MAX);
        // Floats still accept fractional values, of course.
        assert_eq!(from_str::<f64>("3.7").unwrap(), 3.7);
    }

    #[test]
    fn tuples_and_arrays_serialize_as_json_arrays() {
        let pair = ("KronFit".to_string(), 0.25f64);
        assert_eq!(to_string(&pair), "[\"KronFit\",0.25]");
        let back: (String, f64) = from_str("[\"KronFit\",0.25]").unwrap();
        assert_eq!(back, pair);
        let stats = [1.0f64, 2.0, 3.0, 4.0];
        let back: [f64; 4] = from_str(&to_string(&stats)).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// Regression: RFC 8259 forbids leading zeros; the parser must be as strict as the
    /// serde_json it replaces.
    #[test]
    fn parser_rejects_leading_zeros() {
        for bad in ["0123", "-007", "[01]", "{\"a\": 00}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert_eq!(Json::parse("0").unwrap().as_f64(), Some(0.0));
        assert_eq!(Json::parse("-0.5").unwrap().as_f64(), Some(-0.5));
        assert_eq!(Json::parse("10").unwrap().as_f64(), Some(10.0));
    }

    /// Regression: a degenerate deeply nested document must return an error instead of
    /// overflowing the parser's stack (serde_json guards this with a 128-deep recursion limit).
    #[test]
    fn parser_enforces_a_nesting_depth_limit() {
        let deep_bad = "[".repeat(100_000);
        let err = Json::parse(&deep_bad).unwrap_err();
        assert!(err.to_string().contains("nesting depth"), "{err}");
        // Mixed object/array nesting is counted too.
        let mixed = "{\"a\":[".repeat(80) + "1" + &"]}".repeat(80);
        assert!(Json::parse(&mixed).is_err());
        // Depth within the limit still parses, including siblings after a deep branch
        // (the depth counter must unwind when containers close).
        let ok = "[".repeat(100) + "1" + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
        assert!(Json::parse("[[1],[2],[3]]").is_ok());
    }

    #[test]
    fn parser_accepts_escapes_and_unicode() {
        let doc = r#"{"s": "tab\tnl\nAé", "neg": -1.5e-3}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "tab\tnl\nAé");
        assert!((v.get("neg").unwrap().as_f64().unwrap() + 0.0015).abs() < 1e-15);
    }
}
