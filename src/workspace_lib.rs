//! Workspace-level crate hosting the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). The library itself only re-exports the `kronpriv` facade so
//! that examples and tests can use a single import path.

#![forbid(unsafe_code)]

pub use kronpriv::prelude;
