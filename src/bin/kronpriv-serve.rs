//! `kronpriv-serve` — launch the kronpriv HTTP/JSON service, or probe a running one.
//!
//! ```sh
//! kronpriv-serve [--addr 127.0.0.1:8080] [--workers 4] [--job-workers 2] \
//!                [--compute-threads 0] [--max-order 16] [--request-deadline 30] \
//!                [--data-dir PATH] [--snapshot-every N]
//! kronpriv-serve --probe 127.0.0.1:8080         # end-to-end smoke: estimates, datasets,
//!                                               # budget ledger (incl. a deliberate 429)
//! kronpriv-serve --probe-replay 127.0.0.1:8080  # after a restart on the same --data-dir:
//!                                               # assert datasets/ledgers/jobs survived
//! kronpriv-serve --metrics 127.0.0.1:8080       # scrape /metrics, validate every line, exit
//! ```
//!
//! `--data-dir PATH` makes the server durable: datasets (with their privacy-budget ledgers)
//! and jobs are appended to a record log under `PATH` and replayed on the next boot, so a
//! crash or restart loses nothing. Without the flag all state is in-memory, as before.
//!
//! `--compute-threads N` sizes the shared compute worker pool, built once at startup and
//! borrowed by every estimation job for its parallel stages — the counting kernels (triangle
//! count, smooth sensitivity), the isotonic degree post-processing and the fitting stage (the
//! moment-matching fit and the multi-chain KronFit baseline); `0` (the default) means one
//! worker per available hardware thread. Every stage is deterministic for any pool size, so
//! the flag never changes results.
//!
//! `--request-deadline SECS` bounds the wall-clock time a client may take to deliver one full
//! request (the slowloris guard); the per-read socket timeout alone cannot stop a client
//! dripping one byte per interval.
//!
//! With `--addr 127.0.0.1:0` the OS picks an ephemeral port; the first stdout line always
//! reports the bound address (`listening on http://<addr>`), which is what
//! `scripts/verify.sh --quick` scrapes before probing.

use kronpriv::kronpriv_obs::well_formed_exposition_line;
use kronpriv_server::{client, serve, ServerConfig};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Mode::Serve(config)) => run_server(config),
        Ok(Mode::Probe(addr)) => run_probe(addr),
        Ok(Mode::ProbeReplay(addr)) => run_probe_replay(addr),
        Ok(Mode::Metrics(addr)) => run_metrics_check(addr),
        Err(message) => {
            eprintln!("kronpriv-serve: {message}");
            eprintln!(
                "usage: kronpriv-serve [--addr HOST:PORT] [--workers N] [--job-workers N] \
                 [--compute-threads N] [--max-order K] [--request-deadline SECS] \
                 [--data-dir PATH] [--snapshot-every N] \
                 | --probe HOST:PORT | --probe-replay HOST:PORT | --metrics HOST:PORT"
            );
            ExitCode::from(2)
        }
    }
}

enum Mode {
    Serve(ServerConfig),
    Probe(SocketAddr),
    ProbeReplay(SocketAddr),
    Metrics(SocketAddr),
}

fn parse_args(args: &[String]) -> Result<Mode, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8080".to_string(),
        access_log: true,
        ..ServerConfig::default()
    };
    let mut probe: Option<SocketAddr> = None;
    let mut probe_replay: Option<SocketAddr> = None;
    let mut metrics: Option<SocketAddr> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?.to_string(),
            "--workers" => {
                config.workers = parse_positive(value("--workers")?, "--workers")?;
            }
            "--job-workers" => {
                config.job_workers = parse_positive(value("--job-workers")?, "--job-workers")?;
            }
            "--compute-threads" => {
                // 0 is meaningful here ("auto"), unlike the worker-count flags.
                let raw = value("--compute-threads")?;
                config.compute_threads = raw.parse::<usize>().map_err(|_| {
                    format!("--compute-threads: expected a non-negative integer, got {raw:?}")
                })?;
            }
            "--max-order" => {
                let raw = value("--max-order")?;
                config.max_order = match raw.parse::<u32>() {
                    Ok(n) if n > 0 => n,
                    _ => return Err(format!("--max-order: expected a positive u32, got {raw:?}")),
                };
            }
            "--request-deadline" => {
                let raw = value("--request-deadline")?;
                config.request_deadline = match raw.parse::<u64>() {
                    Ok(secs) if secs > 0 => std::time::Duration::from_secs(secs),
                    _ => {
                        return Err(format!(
                            "--request-deadline: expected a positive number of seconds, got {raw:?}"
                        ))
                    }
                };
            }
            "--data-dir" => {
                config.data_dir = Some(std::path::PathBuf::from(value("--data-dir")?));
            }
            "--snapshot-every" => {
                config.snapshot_every =
                    parse_positive(value("--snapshot-every")?, "--snapshot-every")? as u64;
            }
            "--probe" => {
                let raw = value("--probe")?;
                probe = Some(raw.parse().map_err(|_| format!("--probe: bad address {raw:?}"))?);
            }
            "--probe-replay" => {
                let raw = value("--probe-replay")?;
                probe_replay =
                    Some(raw.parse().map_err(|_| format!("--probe-replay: bad address {raw:?}"))?);
            }
            "--metrics" => {
                let raw = value("--metrics")?;
                metrics = Some(raw.parse().map_err(|_| format!("--metrics: bad address {raw:?}"))?);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let modes = probe.is_some() as u8 + probe_replay.is_some() as u8 + metrics.is_some() as u8;
    if modes > 1 {
        return Err("--probe, --probe-replay and --metrics are mutually exclusive".into());
    }
    Ok(match (probe, probe_replay, metrics) {
        (Some(addr), _, _) => Mode::Probe(addr),
        (_, Some(addr), _) => Mode::ProbeReplay(addr),
        (_, _, Some(addr)) => Mode::Metrics(addr),
        (None, None, None) => Mode::Serve(config),
    })
}

fn parse_positive(raw: &str, flag: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("{flag}: expected a positive integer, got {raw:?}")),
    }
}

fn run_server(config: ServerConfig) -> ExitCode {
    let workers = config.workers;
    let job_workers = config.job_workers;
    let compute_threads = config.compute_threads;
    let durability = match &config.data_dir {
        Some(dir) => format!("data-dir={} (durable)", dir.display()),
        None => "data-dir=none (in-memory)".to_string(),
    };
    match serve(config) {
        Ok(handle) => {
            println!("listening on http://{}", handle.addr());
            println!(
                "workers={workers} job-workers={job_workers} compute-threads={compute_threads} \
                 (0=auto) {durability}; endpoints: GET /healthz, GET /metrics, \
                 POST /api/v1/estimate, GET /api/v1/jobs/{{id}}[/events], POST /api/v1/sample, \
                 /api/v1/datasets[/{{name}}[/estimate|/budget]] (see API.md); \
                 access log: one JSON line per request on stdout"
            );
            handle.wait();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kronpriv-serve: cannot start: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Scrapes `/metrics` from a live server and validates every line of the exposition against
/// [`well_formed_exposition_line`] — the same validator the in-process tests and the CI gate
/// use. Exits non-zero on any malformed line, so `scripts/verify.sh --quick` can gate on it.
fn run_metrics_check(addr: SocketAddr) -> ExitCode {
    match metrics_check(addr) {
        Ok(lines) => {
            println!("metrics: OK ({lines} well-formed lines)");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("metrics: {message}");
            ExitCode::FAILURE
        }
    }
}

fn metrics_check(addr: SocketAddr) -> Result<usize, String> {
    let (status, body) =
        client::get(addr, "/metrics").map_err(|e| format!("scrape failed: {e}"))?;
    if status != 200 {
        return Err(format!("/metrics returned {status}: {body}"));
    }
    let mut lines = 0usize;
    for line in body.lines() {
        if !well_formed_exposition_line(line) {
            return Err(format!("malformed exposition line: {line:?}"));
        }
        lines += 1;
    }
    if lines == 0 {
        return Err("empty exposition".to_string());
    }
    Ok(lines)
}

/// Drives a live server end to end: `/healthz`, then a tiny sampled-SKG estimate job polled to
/// completion, then `/api/sample`, a `/metrics` scrape and a job event stream. Exits non-zero
/// on any failure — the verify-script smoke test.
fn run_probe(addr: SocketAddr) -> ExitCode {
    match probe(addr) {
        Ok(()) => {
            println!("probe: OK");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("probe: {message}");
            ExitCode::FAILURE
        }
    }
}

fn probe(addr: SocketAddr) -> Result<(), String> {
    let (status, body) =
        client::get(addr, "/healthz").map_err(|e| format!("healthz request failed: {e}"))?;
    if status != 200 || !body.contains("\"ok\"") {
        return Err(format!("healthz returned {status}: {body}"));
    }

    let request = r#"{
        "graph": {"skg": {"theta": {"a": 0.95, "b": 0.55, "c": 0.2}, "k": 7}},
        "params": {"epsilon": 1.0, "delta": 0.01},
        "seed": 42
    }"#;
    let (status, body) = client::post_json(addr, "/api/estimate", request)
        .map_err(|e| format!("estimate request failed: {e}"))?;
    if status != 202 {
        return Err(format!("estimate returned {status}: {body}"));
    }
    let job_id = extract_number(&body, "job_id").ok_or(format!("no job_id in {body}"))?;

    let deadline = Instant::now() + Duration::from_secs(60);
    let done = loop {
        let (status, body) = client::get(addr, &format!("/api/jobs/{job_id}"))
            .map_err(|e| format!("job poll failed: {e}"))?;
        if status != 200 {
            return Err(format!("job poll returned {status}: {body}"));
        }
        if body.contains("\"Done\"") {
            break body;
        }
        if body.contains("\"Failed\"") {
            return Err(format!("job failed: {body}"));
        }
        if Instant::now() > deadline {
            return Err(format!("job {job_id} did not finish in time"));
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    if !done.contains("\"theta\"") {
        return Err(format!("job result has no theta: {done}"));
    }

    // The baseline selector: a tiny KronFit job must come back marked as such.
    let kronfit_request = r#"{
        "graph": {"skg": {"theta": {"a": 0.95, "b": 0.55, "c": 0.2}, "k": 6}},
        "estimator": "kronfit",
        "seed": 42,
        "kronfit": {"gradient_steps": 5, "warmup_swaps": 500, "samples_per_step": 2,
                    "swaps_between_samples": 100, "learning_rate": 0.06,
                    "min_parameter": 0.001, "initial": {"a": 0.9, "b": 0.6, "c": 0.2},
                    "chains": 2}
    }"#;
    let (status, body) = client::post_json(addr, "/api/estimate", kronfit_request)
        .map_err(|e| format!("kronfit estimate request failed: {e}"))?;
    if status != 202 {
        return Err(format!("kronfit estimate returned {status}: {body}"));
    }
    let job_id = extract_number(&body, "job_id").ok_or(format!("no job_id in {body}"))?;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = client::get(addr, &format!("/api/jobs/{job_id}"))
            .map_err(|e| format!("kronfit job poll failed: {e}"))?;
        if status != 200 {
            return Err(format!("kronfit job poll returned {status}: {body}"));
        }
        if body.contains("\"Done\"") {
            if !body.contains("\"estimator\":\"kronfit\"") {
                return Err(format!("kronfit job result is not marked as kronfit: {body}"));
            }
            break;
        }
        if body.contains("\"Failed\"") {
            return Err(format!("kronfit job failed: {body}"));
        }
        if Instant::now() > deadline {
            return Err(format!("kronfit job {job_id} did not finish in time"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let sample = r#"{"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 6, "seed": 1}"#;
    let (status, body) = client::post_json(addr, "/api/sample", sample)
        .map_err(|e| format!("sample request failed: {e}"))?;
    if status != 200 || !body.contains("\"edge_list\"") {
        return Err(format!("sample returned {status}: {body}"));
    }

    // The observability surface: the finished job's event stream replays queued → done, and the
    // traffic just driven must scrape back as well-formed Prometheus text.
    let (status, head, stream) = client::get_stream(addr, &format!("/api/jobs/{job_id}/events"))
        .map_err(|e| format!("event stream failed: {e}"))?;
    if status != 200 || !head.contains("Content-Type: application/x-ndjson") {
        return Err(format!("event stream returned {status}: {head}"));
    }
    let first = stream.lines().next().unwrap_or_default();
    let last = stream.lines().last().unwrap_or_default();
    if !first.contains("\"queued\"") || !last.contains("\"done\"") {
        return Err(format!("event stream did not replay queued → done: {stream}"));
    }

    // Legacy alias contract: the pre-versioning spelling answers byte-identically but is
    // marked deprecated; the canonical spelling is not.
    let (status, head, legacy_body) =
        client::request_with_head(addr, "GET", &format!("/api/jobs/{job_id}"), None)
            .map_err(|e| format!("legacy job poll failed: {e}"))?;
    if status != 200 || !head.contains("Deprecation: true") {
        return Err(format!("legacy alias is not marked deprecated ({status}): {head}"));
    }
    let (status, head, v1_body) =
        client::request_with_head(addr, "GET", &format!("/api/v1/jobs/{job_id}"), None)
            .map_err(|e| format!("v1 job poll failed: {e}"))?;
    if status != 200 || head.contains("Deprecation") {
        return Err(format!("v1 spelling must not be deprecated ({status}): {head}"));
    }
    if legacy_body != v1_body {
        return Err("legacy alias body differs from the v1 body".to_string());
    }

    probe_datasets(addr)?;

    let lines = metrics_check(addr)?;
    if lines < 3 {
        return Err(format!("suspiciously small exposition after a full probe: {lines} lines"));
    }
    Ok(())
}

/// The probe dataset: uploaded with an ε-budget that affords exactly two of the probe's
/// estimate draws, so the third is a deliberate `429 budget_exhausted`. `--probe-replay`
/// asserts the same ledger state after a restart.
const PROBE_DATASET: &str = "probe-ds";

/// One deterministic 60-node edge list (ring + chords), JSON-escaped for embedding in a
/// request body — the same graph shape the integration tests push through the pipeline.
fn probe_edge_list_json() -> String {
    let mut text = String::new();
    for i in 0..60 {
        text.push_str(&format!("{} {}\\n{} {}\\n", i, (i + 1) % 60, i, (i + 2) % 60));
        if i < 30 {
            text.push_str(&format!("{} {}\\n", i, i + 30));
        }
    }
    format!("\"{text}\"")
}

/// Drives the dataset lifecycle end to end: upload with a budget, two private estimates that
/// debit it, the budget document, a deliberate refusal once the budget is exhausted, and
/// delete on a second throwaway dataset.
fn probe_datasets(addr: SocketAddr) -> Result<(), String> {
    let create = format!(
        r#"{{"name": "{PROBE_DATASET}", "edge_list": {}, "budget": {{"epsilon": 2.0, "delta": 0.1}}}}"#,
        probe_edge_list_json()
    );
    let (status, body) = client::post_json(addr, "/api/v1/datasets", &create)
        .map_err(|e| format!("dataset create failed: {e}"))?;
    if status != 201 || !body.contains("\"budget\"") {
        return Err(format!("dataset create returned {status}: {body}"));
    }

    // Two estimates of (0.9, 0.04) fit the (2.0, 0.1) budget; each must debit the ledger.
    for seed in [7u64, 8] {
        let request = format!(r#"{{"params": {{"epsilon": 0.9, "delta": 0.04}}, "seed": {seed}}}"#);
        let (status, body) = client::post_json(
            addr,
            &format!("/api/v1/datasets/{PROBE_DATASET}/estimate"),
            &request,
        )
        .map_err(|e| format!("dataset estimate failed: {e}"))?;
        if status != 202 {
            return Err(format!("dataset estimate returned {status}: {body}"));
        }
        let job_id = extract_number(&body, "job_id").ok_or(format!("no job_id in {body}"))?;
        wait_for_done(addr, job_id)?;
    }

    let (status, body) = client::get(addr, &format!("/api/v1/datasets/{PROBE_DATASET}/budget"))
        .map_err(|e| format!("budget doc failed: {e}"))?;
    if status != 200 || !body.contains("\"epsilon_spent\":1.8") {
        return Err(format!("budget doc after two debits returned {status}: {body}"));
    }

    // The third draw must be refused — and refusal spends nothing.
    let third = r#"{"params": {"epsilon": 0.9, "delta": 0.04}, "seed": 9}"#;
    let (status, body) =
        client::post_json(addr, &format!("/api/v1/datasets/{PROBE_DATASET}/estimate"), third)
            .map_err(|e| format!("over-budget estimate failed: {e}"))?;
    if status != 429
        || !body.contains("\"budget_exhausted\"")
        || !body.contains("remaining_epsilon")
    {
        return Err(format!("over-budget estimate returned {status}, want 429: {body}"));
    }
    let (status, body) = client::get(addr, &format!("/api/v1/datasets/{PROBE_DATASET}/budget"))
        .map_err(|e| format!("budget doc failed: {e}"))?;
    if status != 200 || !body.contains("\"epsilon_spent\":1.8") {
        return Err(format!("a refused draw must not spend budget ({status}): {body}"));
    }

    // Delete semantics on a throwaway dataset: gone from the collection afterwards.
    let create = format!(
        r#"{{"name": "probe-tmp", "edge_list": {}, "budget": {{"epsilon": 0.5, "delta": 0.01}}}}"#,
        probe_edge_list_json()
    );
    let (status, body) = client::post_json(addr, "/api/v1/datasets", &create)
        .map_err(|e| format!("throwaway dataset create failed: {e}"))?;
    if status != 201 {
        return Err(format!("throwaway dataset create returned {status}: {body}"));
    }
    let (status, body) = client::delete(addr, "/api/v1/datasets/probe-tmp")
        .map_err(|e| format!("dataset delete failed: {e}"))?;
    if status != 200 {
        return Err(format!("dataset delete returned {status}: {body}"));
    }
    let (status, _) = client::get(addr, "/api/v1/datasets/probe-tmp")
        .map_err(|e| format!("deleted dataset lookup failed: {e}"))?;
    if status != 404 {
        return Err(format!("deleted dataset still answers {status}"));
    }
    Ok(())
}

/// Polls one job until `Done` (error on `Failed` or timeout).
fn wait_for_done(addr: SocketAddr, job_id: u64) -> Result<String, String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = client::get(addr, &format!("/api/v1/jobs/{job_id}"))
            .map_err(|e| format!("job poll failed: {e}"))?;
        if status != 200 {
            return Err(format!("job poll returned {status}: {body}"));
        }
        if body.contains("\"Done\"") {
            return Ok(body);
        }
        if body.contains("\"Failed\"") {
            return Err(format!("job failed: {body}"));
        }
        if Instant::now() > deadline {
            return Err(format!("job {job_id} did not finish in time"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Asserts that a server restarted on the same `--data-dir` replayed what `--probe` left
/// behind: the dataset with its spent ledger (still refusing over-budget draws), the deletion
/// of the throwaway dataset, and the finished jobs with their results.
fn run_probe_replay(addr: SocketAddr) -> ExitCode {
    match probe_replay(addr) {
        Ok(()) => {
            println!("probe-replay: OK");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("probe-replay: {message}");
            ExitCode::FAILURE
        }
    }
}

fn probe_replay(addr: SocketAddr) -> Result<(), String> {
    let (status, body) =
        client::get(addr, "/healthz").map_err(|e| format!("healthz request failed: {e}"))?;
    if status != 200 {
        return Err(format!("healthz returned {status}: {body}"));
    }
    if body.contains("\"data_dir\":null") || !body.contains("\"data_dir\":") {
        return Err(format!("healthz does not report a data_dir: {body}"));
    }

    // The ledger must have survived the restart with its spend intact...
    let (status, body) = client::get(addr, &format!("/api/v1/datasets/{PROBE_DATASET}/budget"))
        .map_err(|e| format!("budget doc failed: {e}"))?;
    if status != 200 || !body.contains("\"epsilon_spent\":1.8") {
        return Err(format!("replayed budget doc returned {status}: {body}"));
    }
    // ...and must still refuse a draw the remaining budget cannot afford.
    let request = r#"{"params": {"epsilon": 0.9, "delta": 0.04}, "seed": 10}"#;
    let (status, body) =
        client::post_json(addr, &format!("/api/v1/datasets/{PROBE_DATASET}/estimate"), request)
            .map_err(|e| format!("over-budget estimate failed: {e}"))?;
    if status != 429 || !body.contains("\"budget_exhausted\"") {
        return Err(format!("replayed ledger accepted an over-budget draw ({status}): {body}"));
    }

    // The deletion was replayed too.
    let (status, _) = client::get(addr, "/api/v1/datasets/probe-tmp")
        .map_err(|e| format!("deleted dataset lookup failed: {e}"))?;
    if status != 404 {
        return Err(format!("deleted dataset reappeared after replay ({status})"));
    }

    // Job 1 is the probe's first estimate, polled to completion before the restart; its
    // persisted result must come back verbatim.
    let (status, body) =
        client::get(addr, "/api/v1/jobs/1").map_err(|e| format!("job 1 poll failed: {e}"))?;
    if status != 200 || !body.contains("\"Done\"") || !body.contains("\"theta\"") {
        return Err(format!("replayed job 1 returned {status}: {body}"));
    }
    Ok(())
}

/// Pulls `"key": <integer>` out of a compact JSON body without a full parse (the probe only
/// needs the job id, and the binary deliberately leans on the client, not the JSON crate).
fn extract_number(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &body[body.find(&needle)? + needle.len()..];
    let digits: String = rest.trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}
