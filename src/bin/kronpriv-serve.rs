//! `kronpriv-serve` — launch the kronpriv HTTP/JSON service, or probe a running one.
//!
//! ```sh
//! kronpriv-serve [--addr 127.0.0.1:8080] [--workers 4] [--job-workers 2] \
//!                [--compute-threads 0] [--max-order 16] [--request-deadline 30]
//! kronpriv-serve --probe 127.0.0.1:8080      # health + tiny end-to-end estimate, then exit
//! kronpriv-serve --metrics 127.0.0.1:8080    # scrape /metrics, validate every line, exit
//! ```
//!
//! `--compute-threads N` sizes the shared compute worker pool, built once at startup and
//! borrowed by every estimation job for its parallel stages — the counting kernels (triangle
//! count, smooth sensitivity), the isotonic degree post-processing and the fitting stage (the
//! moment-matching fit and the multi-chain KronFit baseline); `0` (the default) means one
//! worker per available hardware thread. Every stage is deterministic for any pool size, so
//! the flag never changes results.
//!
//! `--request-deadline SECS` bounds the wall-clock time a client may take to deliver one full
//! request (the slowloris guard); the per-read socket timeout alone cannot stop a client
//! dripping one byte per interval.
//!
//! With `--addr 127.0.0.1:0` the OS picks an ephemeral port; the first stdout line always
//! reports the bound address (`listening on http://<addr>`), which is what
//! `scripts/verify.sh --quick` scrapes before probing.

use kronpriv::kronpriv_obs::well_formed_exposition_line;
use kronpriv_server::{client, serve, ServerConfig};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Mode::Serve(config)) => run_server(config),
        Ok(Mode::Probe(addr)) => run_probe(addr),
        Ok(Mode::Metrics(addr)) => run_metrics_check(addr),
        Err(message) => {
            eprintln!("kronpriv-serve: {message}");
            eprintln!(
                "usage: kronpriv-serve [--addr HOST:PORT] [--workers N] [--job-workers N] \
                 [--compute-threads N] [--max-order K] [--request-deadline SECS] \
                 | --probe HOST:PORT | --metrics HOST:PORT"
            );
            ExitCode::from(2)
        }
    }
}

enum Mode {
    Serve(ServerConfig),
    Probe(SocketAddr),
    Metrics(SocketAddr),
}

fn parse_args(args: &[String]) -> Result<Mode, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8080".to_string(),
        access_log: true,
        ..ServerConfig::default()
    };
    let mut probe: Option<SocketAddr> = None;
    let mut metrics: Option<SocketAddr> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?.to_string(),
            "--workers" => {
                config.workers = parse_positive(value("--workers")?, "--workers")?;
            }
            "--job-workers" => {
                config.job_workers = parse_positive(value("--job-workers")?, "--job-workers")?;
            }
            "--compute-threads" => {
                // 0 is meaningful here ("auto"), unlike the worker-count flags.
                let raw = value("--compute-threads")?;
                config.compute_threads = raw.parse::<usize>().map_err(|_| {
                    format!("--compute-threads: expected a non-negative integer, got {raw:?}")
                })?;
            }
            "--max-order" => {
                let raw = value("--max-order")?;
                config.max_order = match raw.parse::<u32>() {
                    Ok(n) if n > 0 => n,
                    _ => return Err(format!("--max-order: expected a positive u32, got {raw:?}")),
                };
            }
            "--request-deadline" => {
                let raw = value("--request-deadline")?;
                config.request_deadline = match raw.parse::<u64>() {
                    Ok(secs) if secs > 0 => std::time::Duration::from_secs(secs),
                    _ => {
                        return Err(format!(
                            "--request-deadline: expected a positive number of seconds, got {raw:?}"
                        ))
                    }
                };
            }
            "--probe" => {
                let raw = value("--probe")?;
                probe = Some(raw.parse().map_err(|_| format!("--probe: bad address {raw:?}"))?);
            }
            "--metrics" => {
                let raw = value("--metrics")?;
                metrics = Some(raw.parse().map_err(|_| format!("--metrics: bad address {raw:?}"))?);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(match (probe, metrics) {
        (Some(_), Some(_)) => return Err("--probe and --metrics are mutually exclusive".into()),
        (Some(addr), None) => Mode::Probe(addr),
        (None, Some(addr)) => Mode::Metrics(addr),
        (None, None) => Mode::Serve(config),
    })
}

fn parse_positive(raw: &str, flag: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("{flag}: expected a positive integer, got {raw:?}")),
    }
}

fn run_server(config: ServerConfig) -> ExitCode {
    let workers = config.workers;
    let job_workers = config.job_workers;
    let compute_threads = config.compute_threads;
    match serve(config) {
        Ok(handle) => {
            println!("listening on http://{}", handle.addr());
            println!(
                "workers={workers} job-workers={job_workers} compute-threads={compute_threads} \
                 (0=auto); endpoints: GET /healthz, GET /metrics, POST /api/estimate, \
                 GET /api/jobs/{{id}}, GET /api/jobs/{{id}}/events, POST /api/sample \
                 (see API.md); access log: one JSON line per request on stdout"
            );
            handle.wait();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kronpriv-serve: cannot bind: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Scrapes `/metrics` from a live server and validates every line of the exposition against
/// [`well_formed_exposition_line`] — the same validator the in-process tests and the CI gate
/// use. Exits non-zero on any malformed line, so `scripts/verify.sh --quick` can gate on it.
fn run_metrics_check(addr: SocketAddr) -> ExitCode {
    match metrics_check(addr) {
        Ok(lines) => {
            println!("metrics: OK ({lines} well-formed lines)");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("metrics: {message}");
            ExitCode::FAILURE
        }
    }
}

fn metrics_check(addr: SocketAddr) -> Result<usize, String> {
    let (status, body) =
        client::get(addr, "/metrics").map_err(|e| format!("scrape failed: {e}"))?;
    if status != 200 {
        return Err(format!("/metrics returned {status}: {body}"));
    }
    let mut lines = 0usize;
    for line in body.lines() {
        if !well_formed_exposition_line(line) {
            return Err(format!("malformed exposition line: {line:?}"));
        }
        lines += 1;
    }
    if lines == 0 {
        return Err("empty exposition".to_string());
    }
    Ok(lines)
}

/// Drives a live server end to end: `/healthz`, then a tiny sampled-SKG estimate job polled to
/// completion, then `/api/sample`, a `/metrics` scrape and a job event stream. Exits non-zero
/// on any failure — the verify-script smoke test.
fn run_probe(addr: SocketAddr) -> ExitCode {
    match probe(addr) {
        Ok(()) => {
            println!("probe: OK");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("probe: {message}");
            ExitCode::FAILURE
        }
    }
}

fn probe(addr: SocketAddr) -> Result<(), String> {
    let (status, body) =
        client::get(addr, "/healthz").map_err(|e| format!("healthz request failed: {e}"))?;
    if status != 200 || !body.contains("\"ok\"") {
        return Err(format!("healthz returned {status}: {body}"));
    }

    let request = r#"{
        "graph": {"skg": {"theta": {"a": 0.95, "b": 0.55, "c": 0.2}, "k": 7}},
        "params": {"epsilon": 1.0, "delta": 0.01},
        "seed": 42
    }"#;
    let (status, body) = client::post_json(addr, "/api/estimate", request)
        .map_err(|e| format!("estimate request failed: {e}"))?;
    if status != 202 {
        return Err(format!("estimate returned {status}: {body}"));
    }
    let job_id = extract_number(&body, "job_id").ok_or(format!("no job_id in {body}"))?;

    let deadline = Instant::now() + Duration::from_secs(60);
    let done = loop {
        let (status, body) = client::get(addr, &format!("/api/jobs/{job_id}"))
            .map_err(|e| format!("job poll failed: {e}"))?;
        if status != 200 {
            return Err(format!("job poll returned {status}: {body}"));
        }
        if body.contains("\"Done\"") {
            break body;
        }
        if body.contains("\"Failed\"") {
            return Err(format!("job failed: {body}"));
        }
        if Instant::now() > deadline {
            return Err(format!("job {job_id} did not finish in time"));
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    if !done.contains("\"theta\"") {
        return Err(format!("job result has no theta: {done}"));
    }

    // The baseline selector: a tiny KronFit job must come back marked as such.
    let kronfit_request = r#"{
        "graph": {"skg": {"theta": {"a": 0.95, "b": 0.55, "c": 0.2}, "k": 6}},
        "estimator": "kronfit",
        "seed": 42,
        "kronfit": {"gradient_steps": 5, "warmup_swaps": 500, "samples_per_step": 2,
                    "swaps_between_samples": 100, "learning_rate": 0.06,
                    "min_parameter": 0.001, "initial": {"a": 0.9, "b": 0.6, "c": 0.2},
                    "chains": 2}
    }"#;
    let (status, body) = client::post_json(addr, "/api/estimate", kronfit_request)
        .map_err(|e| format!("kronfit estimate request failed: {e}"))?;
    if status != 202 {
        return Err(format!("kronfit estimate returned {status}: {body}"));
    }
    let job_id = extract_number(&body, "job_id").ok_or(format!("no job_id in {body}"))?;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = client::get(addr, &format!("/api/jobs/{job_id}"))
            .map_err(|e| format!("kronfit job poll failed: {e}"))?;
        if status != 200 {
            return Err(format!("kronfit job poll returned {status}: {body}"));
        }
        if body.contains("\"Done\"") {
            if !body.contains("\"estimator\":\"kronfit\"") {
                return Err(format!("kronfit job result is not marked as kronfit: {body}"));
            }
            break;
        }
        if body.contains("\"Failed\"") {
            return Err(format!("kronfit job failed: {body}"));
        }
        if Instant::now() > deadline {
            return Err(format!("kronfit job {job_id} did not finish in time"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let sample = r#"{"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 6, "seed": 1}"#;
    let (status, body) = client::post_json(addr, "/api/sample", sample)
        .map_err(|e| format!("sample request failed: {e}"))?;
    if status != 200 || !body.contains("\"edge_list\"") {
        return Err(format!("sample returned {status}: {body}"));
    }

    // The observability surface: the finished job's event stream replays queued → done, and the
    // traffic just driven must scrape back as well-formed Prometheus text.
    let (status, head, stream) = client::get_stream(addr, &format!("/api/jobs/{job_id}/events"))
        .map_err(|e| format!("event stream failed: {e}"))?;
    if status != 200 || !head.contains("Content-Type: application/x-ndjson") {
        return Err(format!("event stream returned {status}: {head}"));
    }
    let first = stream.lines().next().unwrap_or_default();
    let last = stream.lines().last().unwrap_or_default();
    if !first.contains("\"queued\"") || !last.contains("\"done\"") {
        return Err(format!("event stream did not replay queued → done: {stream}"));
    }
    let lines = metrics_check(addr)?;
    if lines < 3 {
        return Err(format!("suspiciously small exposition after a full probe: {lines} lines"));
    }
    Ok(())
}

/// Pulls `"key": <integer>` out of a compact JSON body without a full parse (the probe only
/// needs the job id, and the binary deliberately leans on the client, not the JSON crate).
fn extract_number(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &body[body.find(&needle)? + needle.len()..];
    let digits: String = rest.trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}
