//! The determinism contract of the multi-chain parallel KronFit, enforced end to end: at a
//! fixed chain count the fit must be **byte-identical** for 1, 2 and 8 compute threads on
//! seeded stochastic Kronecker inputs, because the thread knob only decides which worker runs
//! which chain/edge-chunk — chunk-order reduction puts the pieces back together in a fixed
//! order. The chain count, by contrast, is an algorithm parameter: it selects how many
//! [`StdRng::split`] streams drive the Metropolis sampling, so changing it is *supposed* to
//! change the fit.
//!
//! Also pinned here: the `StdRng::split` stream-derivation contract itself (pairwise
//! non-overlapping prefixes, position independence), which the multi-chain estimator rests on.
//!
//! Together with `tests/parallel_consistency.rs` (counting kernels) and
//! `tests/fit_parallel_consistency.rs` (moment fitting + isotonic pass), this completes the
//! thread-count-invariance coverage of all three Table-1 estimators.

use kronpriv::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A seeded SKG realization at the scale of the paper's smaller networks.
fn skg_graph(k: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    sample_fast(&Initiator2::new(0.99, 0.45, 0.25), k, &SamplerOptions::default(), &mut rng)
}

/// A short but real fit configuration: multi-chunk edge sums would need a bigger graph, so the
/// chain fan-out is the parallel path this options set exercises; the edge-partitioned sums
/// have their own multi-chunk bit-identity test in the `kronpriv-estimate` unit suite.
fn quick_options(chains: usize, compute_threads: usize) -> KronFitOptions {
    KronFitOptions {
        gradient_steps: 8,
        warmup_swaps: 1_000,
        samples_per_step: 2,
        swaps_between_samples: 200,
        chains,
        compute_threads,
        ..Default::default()
    }
}

#[test]
fn multi_chain_fit_is_bit_identical_for_all_thread_counts() {
    let g = skg_graph(9, 0xF17_1000);
    let fit_with = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(0xF17_1001);
        KronFitEstimator::new(quick_options(4, threads)).fit_graph(&g, &mut rng)
    };
    let reference = fit_with(1);
    for threads in THREAD_COUNTS {
        let fit = fit_with(threads);
        assert_eq!(fit.theta.a.to_bits(), reference.theta.a.to_bits(), "threads {threads}: a");
        assert_eq!(fit.theta.b.to_bits(), reference.theta.b.to_bits(), "threads {threads}: b");
        assert_eq!(fit.theta.c.to_bits(), reference.theta.c.to_bits(), "threads {threads}: c");
        assert_eq!(
            fit.objective_value.to_bits(),
            reference.objective_value.to_bits(),
            "threads {threads}: objective"
        );
        assert_eq!(fit.evaluations, reference.evaluations, "threads {threads}: evaluations");
        assert_eq!(fit.k, reference.k, "threads {threads}: order");
    }
}

#[test]
fn chain_count_changes_the_fit_thread_count_does_not() {
    // The contract stated in ISSUE/API terms: `chains` is part of the result's definition,
    // `compute_threads` never is.
    let g = skg_graph(8, 0xF17_1002);
    let run = |chains: usize, threads: usize| {
        let mut rng = StdRng::seed_from_u64(0xF17_1003);
        KronFitEstimator::new(quick_options(chains, threads)).fit_graph(&g, &mut rng).theta
    };
    assert_eq!(run(3, 1), run(3, 8), "threads must not matter at fixed chains");
    assert_ne!(run(1, 1), run(4, 1), "chain count is an algorithm parameter");
}

#[test]
fn split_streams_are_pairwise_non_overlapping_on_a_prefix() {
    // The multi-chain fit assigns stream i to chain i. Pin that the first 512 outputs of 8
    // sibling streams (and the parent) are pairwise disjoint as sets — 4608 draws from a
    // 2^64 space collide with probability ~5e-13, so a single shared value indicates a
    // derivation bug, not chance.
    let parent = StdRng::seed_from_u64(0xF17_1004);
    let prefix = |mut rng: StdRng| -> Vec<u64> { (0..512).map(|_| rng.gen()).collect() };
    let mut streams: Vec<Vec<u64>> = vec![prefix(parent.clone())];
    streams.extend((0..8).map(|i| prefix(parent.split(i))));
    let mut seen: HashSet<u64> = HashSet::new();
    for (index, stream) in streams.iter().enumerate() {
        for &value in stream {
            assert!(seen.insert(value), "stream {index} overlaps an earlier stream at {value}");
        }
    }
}

#[test]
fn split_streams_are_independent_of_position_and_thread_count() {
    // Position independence is what makes the chain seeding thread-count-independent: every
    // chain derives its stream from the construction seed alone, no matter which worker (or
    // how many) asked first.
    let parent = StdRng::seed_from_u64(0xF17_1005);
    let mut advanced = parent.clone();
    for _ in 0..1_000 {
        advanced.gen::<u64>();
    }
    for stream in [0u64, 1, 7, 63] {
        let mut fresh = parent.split(stream);
        let mut after = advanced.split(stream);
        for draw in 0..128 {
            assert_eq!(fresh.gen::<u64>(), after.gen::<u64>(), "stream {stream}, draw {draw}");
        }
    }
}

#[test]
fn kronfit_baseline_is_invariant_under_the_thread_knob_end_to_end() {
    // Through the fallible pipeline entry point the server uses for
    // `/api/estimate` + `"estimator": "kronfit"`.
    let g = skg_graph(8, 0xF17_1006);
    let fit = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(0xF17_1007);
        try_kronfit_estimate(&g, &quick_options(2, threads), &mut rng).unwrap()
    };
    let reference = fit(1);
    for threads in [2usize, 8] {
        let got = fit(threads);
        assert_eq!(got.theta, reference.theta, "threads {threads}");
        assert_eq!(got.objective_value.to_bits(), reference.objective_value.to_bits());
        assert_eq!(got.evaluations, reference.evaluations, "threads {threads}");
    }
}
