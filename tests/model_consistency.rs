//! Integration tests for the consistency between the model's closed-form expectations, the
//! samplers, the observed-count machinery, and the estimators — the chain every experiment in
//! the paper relies on.

use kronpriv::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn monte_carlo_moments_of_the_fast_sampler_match_the_closed_forms() {
    // The closed forms (Equation 1) were validated against the exact sampler inside
    // `kronpriv-skg`; here we close the loop on the fast sampler used by every experiment.
    let theta = Initiator2::new(0.95, 0.5, 0.2);
    let k = 10;
    let reps = 30;
    let mut rng = StdRng::seed_from_u64(1);
    let mut sums = [0.0f64; 4];
    for _ in 0..reps {
        let g = sample_fast(&theta, k, &SamplerOptions::default(), &mut rng);
        let s = MatchingStatistics::of_graph(&g).as_array();
        for i in 0..4 {
            sums[i] += s[i] / reps as f64;
        }
    }
    let expected = ExpectedMoments::of(&theta, k).as_array();
    // Edges should match tightly; higher-order counts inherit the fast sampler's approximation
    // and sampling variance, so the bands widen.
    let tolerance = [0.05, 0.15, 0.35, 0.25];
    for i in 0..4 {
        let rel = (sums[i] - expected[i]).abs() / expected[i].max(1.0);
        assert!(
            rel < tolerance[i],
            "moment {i}: sampled {} vs expected {} (rel {rel})",
            sums[i],
            expected[i]
        );
    }
}

#[test]
fn estimation_then_resampling_preserves_the_matching_statistics() {
    // Fit -> sample -> recount: the resampled graph's statistics should look like the original's
    // (this is the "synthetic graph mimics the original" claim in operational form).
    let truth = Initiator2::new(0.99, 0.45, 0.25);
    let mut rng = StdRng::seed_from_u64(2);
    let original = sample_fast(&truth, 12, &SamplerOptions::default(), &mut rng);
    let fit = KronMomEstimator::default().fit_graph(&original);
    let resampled = sample_fast(&fit.theta, fit.k, &SamplerOptions::default(), &mut rng);
    let a = MatchingStatistics::of_graph(&original);
    let b = MatchingStatistics::of_graph(&resampled);
    assert!((a.edges - b.edges).abs() / a.edges < 0.15, "edges {} vs {}", a.edges, b.edges);
    assert!(
        (a.hairpins - b.hairpins).abs() / a.hairpins < 0.4,
        "hairpins {} vs {}",
        a.hairpins,
        b.hairpins
    );
}

#[test]
fn degree_derived_counts_agree_with_direct_counts_on_every_generator() {
    // Fact 4.6's formulas, applied to exact (noise-free) degree sequences, must agree with the
    // direct subgraph counters for any graph, whichever generator produced it.
    let mut rng = StdRng::seed_from_u64(3);
    let graphs = vec![
        kronpriv_graph::generators::erdos_renyi_gnp(300, 0.02, &mut rng),
        kronpriv_graph::generators::preferential_attachment(300, 3, &mut rng),
        Dataset::CaGrQc.generate(4),
    ];
    for g in graphs {
        let stats = MatchingStatistics::of_graph(&g);
        let degrees: Vec<f64> = g.degrees().iter().map(|&d| d as f64).collect();
        let derived = MatchingStatistics::from_degree_sequence(&degrees, stats.triangles);
        assert!((stats.edges - derived.edges).abs() < 1e-6);
        assert!((stats.hairpins - derived.hairpins).abs() < 1e-6);
        assert!((stats.tripins - derived.tripins).abs() < 1e-6);
    }
}

// Former proptest properties (12 cases each), now deterministic seeded loops.
#[test]
fn kronmom_recovers_arbitrary_initiators_from_their_own_expectations() {
    let mut rng = StdRng::seed_from_u64(0x3C_7001);
    for _ in 0..12 {
        let a = rng.gen_range(0.55..1.0);
        let b = rng.gen_range(0.2..0.8);
        let c = rng.gen_range(0.05..0.5);
        // For any initiator in the realistic region, feeding its exact expected moments into the
        // KronMom objective recovers it (up to the a/c canonical ordering).
        let truth = Initiator2::new(a, b, c).canonicalized();
        let k = 12;
        let m = ExpectedMoments::of(&truth, k);
        let stats = MatchingStatistics {
            edges: m.edges,
            hairpins: m.hairpins,
            tripins: m.tripins,
            triangles: m.triangles,
        };
        let fit = KronMomEstimator::default().fit_statistics(&stats, k);
        assert!(fit.theta.distance(&truth) < 0.05, "recovered {:?} from {truth:?}", fit.theta);
    }
}

#[test]
fn private_statistics_are_always_finite_and_non_negative() {
    let mut outer = StdRng::seed_from_u64(0x3C_7002);
    for _ in 0..12 {
        let seed = outer.gen_range(0..50u64);
        let epsilon = outer.gen_range(0.05..2.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let g =
            sample_fast(&Initiator2::new(0.9, 0.5, 0.2), 9, &SamplerOptions::default(), &mut rng);
        let est = PrivateEstimator::default().fit(&g, PrivacyParams::new(epsilon, 0.01), &mut rng);
        for v in est.private_statistics {
            assert!(v.is_finite());
            assert!(v >= 0.0);
        }
        for p in est.fit.theta.as_array() {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
