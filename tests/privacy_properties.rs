//! Integration tests focused on the privacy-relevant properties of the released artefacts:
//! sensitivity bookkeeping, composition accounting, and an empirical indistinguishability check
//! of the end-to-end release on neighbouring graphs.

use kronpriv::prelude::*;
use kronpriv_dp::{
    private_degree_sequence, smooth_sensitivity_triangles, triangle_local_sensitivity,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn base_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    sample_fast(&Initiator2::new(0.95, 0.5, 0.2), 10, &SamplerOptions::default(), &mut rng)
}

#[test]
fn budget_accounting_of_algorithm_one_composes_to_the_requested_guarantee() {
    let params = PrivacyParams::paper_default();
    let shares = params.split_with_delta_on_last(2);
    let composed = PrivacyParams::compose(&shares);
    assert!((composed.epsilon - params.epsilon).abs() < 1e-12);
    assert!((composed.delta - params.delta).abs() < 1e-12);
}

#[test]
fn private_estimate_reports_exactly_the_budget_it_was_given() {
    let graph = base_graph(1);
    let mut rng = StdRng::seed_from_u64(2);
    let params = PrivacyParams::new(0.3, 0.005);
    let est = PrivateEstimator::default().fit(&graph, params, &mut rng);
    assert_eq!(est.params, params);
    // The two sub-releases carry the split budgets.
    assert!((est.degree_release.params.epsilon - 0.15).abs() < 1e-12);
    let tri = est.triangle_release.expect("triangle release present by default");
    assert!((tri.params.epsilon - 0.15).abs() < 1e-12);
    assert!((tri.params.delta - 0.005).abs() < 1e-12);
}

#[test]
fn smooth_sensitivity_changes_slowly_across_edge_neighbours() {
    // The defining property that makes the triangle release private: the noise magnitude itself
    // cannot change abruptly between neighbouring graphs.
    let graph = base_graph(3);
    let beta = 0.05;
    let base = smooth_sensitivity_triangles(&graph, beta);
    for &(u, v) in graph.edges().iter().take(10) {
        let neighbour = graph.with_edge_removed(u, v);
        let other = smooth_sensitivity_triangles(&neighbour, beta);
        assert!(base <= beta.exp() * other + 1e-9, "{base} vs {other}");
        assert!(other <= beta.exp() * base + 1e-9, "{other} vs {base}");
    }
}

#[test]
fn degree_sequence_noise_scale_matches_the_sensitivity_bound() {
    // Removing one edge changes the sorted degree sequence by at most 2 in L1; the release's
    // accuracy must therefore be governed by Lap(2/ε) noise. We check the empirical spread of
    // the released edge count across repetitions is consistent with that scale (and would fail
    // if the implementation under-noised, i.e. broke the privacy guarantee).
    let graph = base_graph(4);
    let epsilon = 0.5;
    let n = graph.node_count() as f64;
    let reps = 40;
    let mut errors = Vec::new();
    for seed in 0..reps {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let release = private_degree_sequence(&graph, PrivacyParams::pure(epsilon), &mut rng);
        errors.push(release.edge_count() - graph.edge_count() as f64);
    }
    let variance: f64 = errors.iter().map(|e| e * e).sum::<f64>() / reps as f64;
    // Analytic variance of the edge-count estimator: n · 2·(2/ε)² / 4.
    let expected = n * 2.0 * (2.0 / epsilon).powi(2) / 4.0;
    assert!(
        variance > 0.3 * expected && variance < 3.0 * expected,
        "observed variance {variance}, expected ≈ {expected}"
    );
}

#[test]
fn releases_on_neighbouring_graphs_are_statistically_close() {
    // A coarse end-to-end indistinguishability check: the distribution of the released edge
    // statistic on neighbouring graphs (differing in one edge) should overlap heavily at
    // moderate ε. This does not prove DP, but it would catch gross violations such as forgetting
    // the noise or mis-scaling the sensitivity.
    let graph = base_graph(5);
    let &(u, v) = graph.edges().first().expect("non-empty graph");
    let neighbour = graph.with_edge_removed(u, v);
    let epsilon = 0.5;
    let reps = 60;
    let released = |g: &Graph, offset: u64| -> Vec<f64> {
        (0..reps)
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(offset + seed);
                private_degree_sequence(g, PrivacyParams::pure(epsilon), &mut rng).edge_count()
            })
            .collect()
    };
    let a = released(&graph, 10_000);
    let b = released(&neighbour, 20_000);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let sd = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
    };
    // The means differ by exactly one edge in expectation, which must be far smaller than the
    // noise spread — otherwise an observer could tell the two graphs apart from one release.
    let gap = (mean(&a) - mean(&b)).abs();
    let spread = sd(&a).max(sd(&b));
    assert!(gap < 0.5 * spread, "gap {gap} vs spread {spread}");
}

#[test]
fn local_sensitivity_is_bounded_by_max_degree() {
    // Sanity relation used throughout the smooth-sensitivity analysis: a common neighbour of any
    // pair is a neighbour of both, so the count is at most the maximum degree.
    let graph = base_graph(6);
    assert!(triangle_local_sensitivity(&graph) <= graph.max_degree());
}
