//! The no-feedback invariant, pinned end to end: a fully observed pipeline run — every stage
//! span recorded, per-chain progress events emitted with the optional likelihood probe on, and
//! the global metrics registry scraped *between events, mid-flight* — must be byte-identical
//! to the same seed run cold, with no sink and no scrapes. Instrumentation is write-only from
//! the compute code's perspective; this test is the workspace-level proof.

use kronpriv::kronpriv_graph::io::to_edge_list_string;
use kronpriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A sink that scrapes the global registry on every event before recording it — the most
/// adversarial observer: concurrent rendering while the pipeline is mid-stage.
struct ScrapingSink {
    inner: CollectingSink,
    scrapes: AtomicUsize,
}

impl ScrapingSink {
    fn new() -> Self {
        ScrapingSink {
            inner: CollectingSink::with_chain_likelihood(),
            scrapes: AtomicUsize::new(0),
        }
    }
}

impl ProgressSink for ScrapingSink {
    fn emit(&self, event: &ProgressEvent) {
        let exposition = MetricsRegistry::global().render();
        assert!(!exposition.is_empty(), "mid-flight scrape must render");
        self.scrapes.fetch_add(1, Ordering::Relaxed);
        self.inner.emit(event);
    }

    fn wants_chain_likelihood(&self) -> bool {
        true
    }
}

/// Fingerprints a release exactly: every float by its bits, the graph by its edge list.
fn fingerprint(release: &SyntheticRelease) -> String {
    let fit = &release.estimate.fit;
    format!(
        "theta={:x}/{:x}/{:x} k={} obj={:x} evals={} stats={:?} edges={}",
        fit.theta.a.to_bits(),
        fit.theta.b.to_bits(),
        fit.theta.c.to_bits(),
        fit.k,
        fit.objective_value.to_bits(),
        fit.evaluations,
        release.estimate.private_statistics.map(f64::to_bits),
        to_edge_list_string(&release.synthetic)
    )
}

fn secret_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(99);
    sample_fast(&Initiator2::new(0.95, 0.55, 0.2), 8, &SamplerOptions::default(), &mut rng)
}

#[test]
fn observed_and_scraped_release_is_byte_identical_to_a_cold_run() {
    let secret = secret_graph();
    let params = PrivacyParams::new(1.0, 0.01);
    let options = PrivateEstimatorOptions::default();
    let exec = Executor::new(2);

    let cold = {
        let mut rng = StdRng::seed_from_u64(7);
        try_release_synthetic_graph_on(&secret, params, &options, &mut rng, &exec).unwrap()
    };
    let observed = {
        let sink = ScrapingSink::new();
        let mut rng = StdRng::seed_from_u64(7);
        let release =
            try_release_synthetic_graph_observed(&secret, params, &options, &mut rng, &exec, &sink)
                .unwrap();
        assert!(sink.scrapes.load(Ordering::Relaxed) > 0, "the observer must have observed");
        // The stage sequence the pipeline reports: the release stages plus the final sample.
        let stages: Vec<&str> = sink
            .inner
            .events()
            .iter()
            .filter_map(|e| match e {
                ProgressEvent::StageStarted { stage } => Some(*stage),
                _ => None,
            })
            .collect();
        assert_eq!(stages, ["degree_release", "triangle_release", "fit", "sample"], "{stages:?}");
        release
    };
    assert_eq!(
        fingerprint(&cold),
        fingerprint(&observed),
        "instrumentation fed back into the release"
    );
}

#[test]
fn observed_and_scraped_kronfit_is_byte_identical_to_a_cold_run() {
    let secret = secret_graph();
    let options = KronFitOptions {
        gradient_steps: 4,
        warmup_swaps: 300,
        samples_per_step: 2,
        swaps_between_samples: 100,
        chains: 2,
        ..Default::default()
    };
    let exec = Executor::new(2);

    let cold = {
        let mut rng = StdRng::seed_from_u64(13);
        try_kronfit_estimate_on(&secret, &options, &mut rng, &exec).unwrap()
    };
    // The scraping sink additionally turns on the per-step likelihood probe — the probe must
    // consume no randomness, so even with it the fit cannot move.
    let sink = ScrapingSink::new();
    let observed = {
        let mut rng = StdRng::seed_from_u64(13);
        try_kronfit_estimate_observed(&secret, &options, &mut rng, &exec, &sink).unwrap()
    };
    assert_eq!(cold.theta.a.to_bits(), observed.theta.a.to_bits());
    assert_eq!(cold.theta.b.to_bits(), observed.theta.b.to_bits());
    assert_eq!(cold.theta.c.to_bits(), observed.theta.c.to_bits());
    assert_eq!(cold.objective_value.to_bits(), observed.objective_value.to_bits());
    assert_eq!(cold.evaluations, observed.evaluations);
    // And the observer did see every chain step, with the probe delivering finite values.
    let steps =
        sink.inner.events().iter().filter(|e| matches!(e, ProgressEvent::ChainStep { .. })).count();
    assert_eq!(steps, 2 * 4, "2 chains x 4 steps");
}

#[test]
fn the_exposition_scraped_mid_run_is_well_formed() {
    // Drive one observed run, then validate every line of the (now well-populated) registry
    // against the same validator the CI scrape gate uses.
    let secret = secret_graph();
    let exec = Executor::new(2);
    let mut rng = StdRng::seed_from_u64(5);
    try_private_estimate_on(
        &secret,
        PrivacyParams::new(1.0, 0.01),
        &PrivateEstimatorOptions::default(),
        &mut rng,
        &exec,
    )
    .unwrap();
    let exposition = MetricsRegistry::global().render();
    assert!(exposition.contains("kronpriv_stage_total{stage=\"degree_laplace\"}"), "{exposition}");
    assert!(exposition.contains("kronpriv_par_calls_total{"), "{exposition}");
    for line in exposition.lines() {
        assert!(
            kronpriv::kronpriv_obs::well_formed_exposition_line(line),
            "malformed exposition line: {line:?}"
        );
    }
}
