//! The determinism contract of the parallel *fitting* layer, enforced end to end: the
//! multistart optimiser, the grid scan and the isotonic degree post-processing must return
//! **byte-identical** results for 1, 2 and 8 compute threads on seeded stochastic Kronecker
//! inputs — including when restarts tie on the final objective value — and the parallel
//! isotonic pass must agree with the plain sequential PAVA reference up to float associativity.
//!
//! Together with `tests/parallel_consistency.rs` (the counting kernels) this pins the whole of
//! Algorithm 1: `compute_threads` is a pure performance knob at every stage.

use kronpriv::prelude::*;
use kronpriv_dp::{isotonic_increasing_par, private_degree_sequence_par};
use kronpriv_estimate::MomentObjective;
use kronpriv_linalg::isotonic_increasing;
use kronpriv_optim::{
    grid_search, grid_search_par, multistart_minimize, multistart_minimize_par, Bounds,
    MultistartOptions, NelderMeadOptions,
};
use kronpriv_par::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A seeded SKG realization at the scale of the paper's smaller networks.
fn skg_graph(k: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    sample_fast(&Initiator2::new(0.99, 0.45, 0.25), k, &SamplerOptions::default(), &mut rng)
}

fn assert_same_result(
    a: &kronpriv_optim::OptimizationResult,
    b: &kronpriv_optim::OptimizationResult,
    context: &str,
) {
    assert_eq!(a.value.to_bits(), b.value.to_bits(), "{context}: objective value");
    assert_eq!(a.evaluations, b.evaluations, "{context}: evaluation count");
    assert_eq!(a.converged, b.converged, "{context}: convergence flag");
    assert_eq!(a.point.len(), b.point.len(), "{context}: dimension");
    for (x, y) in a.point.iter().zip(&b.point) {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: point coordinate");
    }
}

#[test]
fn multistart_on_an_skg_objective_is_bit_identical_for_all_thread_counts() {
    // The real fitting problem: the paper's moment objective on the observed statistics of a
    // seeded SKG realization. The parallel driver must match the sequential one bit for bit at
    // every thread count.
    let g = skg_graph(10, 0xF17_0001);
    let stats = MatchingStatistics::of_graph(&g);
    let objective = MomentObjective::standard(&stats, 10);
    let bounds = Bounds::unit(3);
    let extra = vec![vec![0.99, 0.5, 0.2]];
    let opts = MultistartOptions::default();

    let sequential = multistart_minimize(|p| objective.evaluate_params(p), &bounds, &extra, &opts);
    for threads in THREAD_COUNTS {
        let par = multistart_minimize_par(
            |p| objective.evaluate_params(p),
            &bounds,
            &extra,
            &opts,
            &Executor::new(threads),
        );
        assert_same_result(&par, &sequential, &format!("threads {threads}"));
    }
}

#[test]
fn grid_scan_on_an_skg_objective_is_bit_identical_for_all_thread_counts() {
    let g = skg_graph(9, 0xF17_0002);
    let stats = MatchingStatistics::of_graph(&g);
    let objective = MomentObjective::standard(&stats, 9);
    let bounds = Bounds::unit(3);
    let reference = grid_search(|p| objective.evaluate_params(p), &bounds, 7);
    for threads in THREAD_COUNTS {
        let got =
            grid_search_par(|p| objective.evaluate_params(p), &bounds, 7, &Executor::new(threads));
        assert_eq!(got.len(), reference.len(), "threads {threads}");
        for (a, b) in got.iter().zip(&reference) {
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "threads {threads}");
            for (x, y) in a.point.iter().zip(&b.point) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads {threads}");
            }
        }
    }
}

#[test]
fn equal_objective_restarts_tie_break_deterministically() {
    // Two flat-bottomed wells both reaching exactly 0.0: two restarts finish at the *same*
    // objective value, so only the lowest-objective / lowest-start-index rule decides the
    // winner. Every thread count (and the sequential driver) must agree on it.
    let f = |x: &[f64]| {
        let d = (x[0] - 0.25).abs().min((x[0] - 0.75).abs());
        (d - 0.1).max(0.0)
    };
    let bounds = Bounds::unit(1);
    let opts = MultistartOptions {
        grid_points_per_axis: 5, // lattice {0, 0.25, 0.5, 0.75, 1}: one seed in each well
        refine_top: 2,
        nelder_mead: NelderMeadOptions::default(),
    };
    let sequential = multistart_minimize(f, &bounds, &[], &opts);
    assert_eq!(sequential.value, 0.0, "both wells bottom out at exactly zero");
    assert!(sequential.point[0] < 0.5, "stable grid order seeds the left well first");
    for threads in THREAD_COUNTS {
        let par = multistart_minimize_par(f, &bounds, &[], &opts, &Executor::new(threads));
        assert_same_result(&par, &sequential, &format!("threads {threads}"));
    }
}

#[test]
fn parallel_isotonic_pass_is_bit_identical_and_tracks_the_sequential_reference() {
    // The constrained-inference pass on a realistic input: the noisy sorted degree sequence of
    // a seeded SKG graph, long enough to span several parallel blocks.
    let g = skg_graph(13, 0xF17_0003);
    let release = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(0xF17_0004);
        private_degree_sequence_par(&g, PrivacyParams::pure(0.1), &mut rng, &Executor::new(threads))
    };
    let reference = release(1);
    assert!(reference.degrees.len() >= 8192, "want a multi-block sequence");
    assert!(reference.degrees.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    for threads in THREAD_COUNTS {
        let got = release(threads);
        assert_eq!(got.noisy_degrees, reference.noisy_degrees, "threads {threads}: noise");
        assert_eq!(got.degrees.len(), reference.degrees.len());
        for (a, b) in got.degrees.iter().zip(&reference.degrees) {
            assert_eq!(a.to_bits(), b.to_bits(), "threads {threads}: fitted degrees");
        }
    }
    // Regression against the element-at-a-time PAVA: identical up to float associativity.
    let sequential = isotonic_increasing(&reference.noisy_degrees);
    let parallel = isotonic_increasing_par(&reference.noisy_degrees, &Executor::new(8));
    for (i, (a, b)) in parallel.iter().zip(&sequential).enumerate() {
        assert!((a - b).abs() < 1e-9, "index {i}: parallel {a} vs sequential {b}");
    }
}

#[test]
fn full_private_fit_is_invariant_under_the_thread_knob() {
    // End to end through the new parallel fitting stage: Algorithm 1's released initiator must
    // not depend on compute_threads, whether the knob is set on the pipeline options or left
    // for the KronMom stage to resolve.
    let g = skg_graph(10, 0xF17_0005);
    let fit = |threads: usize| {
        let options = PrivateEstimatorOptions { compute_threads: threads, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(0xF17_0006);
        try_private_estimate(&g, PrivacyParams::paper_default(), &options, &mut rng).unwrap()
    };
    let reference = fit(1);
    for threads in [2usize, 8] {
        let est = fit(threads);
        assert_eq!(est.fit.theta, reference.fit.theta, "threads {threads}");
        assert_eq!(est.fit.objective_value.to_bits(), reference.fit.objective_value.to_bits());
        assert_eq!(est.fit.evaluations, reference.fit.evaluations, "threads {threads}");
        assert_eq!(est.private_statistics, reference.private_statistics, "threads {threads}");
        assert_eq!(est.degree_release, reference.degree_release, "threads {threads}");
    }
}
