//! Live-socket tests for the durable job store and the per-dataset privacy-budget ledger:
//! kill-and-restart replay on a temporary `--data-dir`, budget exhaustion over HTTP (a refused
//! draw spends nothing), log-corruption tolerance, and the legacy alias contract
//! (`Deprecation: true` header, byte-identical bodies).

use kronpriv_json::Json;
use kronpriv_server::store::Persistence;
use kronpriv_server::{client, serve, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("kronpriv-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_durable(dir: &Path) -> ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        job_workers: 2,
        data_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("durable server must start")
}

fn start_in_memory() -> ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        job_workers: 2,
        ..ServerConfig::default()
    })
    .expect("in-memory server must start")
}

/// A small deterministic edge list (ring + chords), JSON-escaped for request bodies.
fn edge_list_json() -> String {
    let mut text = String::new();
    for i in 0..60 {
        text.push_str(&format!("{} {}\\n{} {}\\n", i, (i + 1) % 60, i, (i + 2) % 60));
    }
    format!("\"{text}\"")
}

fn create_dataset(addr: SocketAddr, name: &str, epsilon: f64, delta: f64) -> (u16, String) {
    let body = format!(
        r#"{{"name": "{name}", "edge_list": {}, "budget": {{"epsilon": {epsilon}, "delta": {delta}}}}}"#,
        edge_list_json()
    );
    client::post_json(addr, "/api/v1/datasets", &body).expect("dataset create request")
}

fn poll_to_done(addr: SocketAddr, job_id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) =
            client::get(addr, &format!("/api/v1/jobs/{job_id}")).expect("poll must succeed");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"Done\"") {
            return body;
        }
        assert!(!body.contains("\"Failed\""), "job {job_id} failed: {body}");
        assert!(Instant::now() < deadline, "job {job_id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn submitted_job_id(body: &str) -> u64 {
    Json::parse(body)
        .expect("submit body is JSON")
        .get("job_id")
        .expect("submit has job_id")
        .as_f64()
        .expect("job_id is a number") as u64
}

fn result_bytes(poll_body: &str) -> String {
    let doc = Json::parse(poll_body).expect("poll body is JSON");
    kronpriv_json::to_string(doc.get("result").expect("poll has a result"))
}

#[test]
fn restart_replays_datasets_ledgers_and_finished_jobs_byte_identically() {
    let dir = temp_dir("restart");
    let estimate = r#"{"params": {"epsilon": 0.7, "delta": 0.02}, "seed": 21}"#;
    let (first_poll, first_result) = {
        let handle = start_durable(&dir);
        let addr = handle.addr();
        let (status, body) = create_dataset(addr, "persisted", 2.0, 0.1);
        assert_eq!(status, 201, "{body}");
        let (status, body) =
            client::post_json(addr, "/api/v1/datasets/persisted/estimate", estimate).unwrap();
        assert_eq!(status, 202, "{body}");
        let id = submitted_job_id(&body);
        let poll = poll_to_done(addr, id);
        let result = result_bytes(&poll);
        handle.shutdown();
        (poll, result)
    };

    // Reboot on the same directory: the dataset, its spent ledger and the finished job must
    // all be back — the job byte-for-byte.
    let handle = start_durable(&dir);
    let addr = handle.addr();
    let (status, body) = client::get(addr, "/api/v1/jobs/1").unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, first_poll, "replayed job document must be byte-identical");

    let (status, body) = client::get(addr, "/api/v1/datasets/persisted/budget").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"epsilon_spent\":0.7"), "{body}");
    let (status, body) = client::get(addr, "/api/v1/datasets").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"persisted\""), "{body}");

    // The determinism contract across the restart: the same declared draw and seed against the
    // replayed dataset reproduces the same release bytes.
    let (status, body) =
        client::post_json(addr, "/api/v1/datasets/persisted/estimate", estimate).unwrap();
    assert_eq!(status, 202, "{body}");
    let rerun = poll_to_done(addr, submitted_job_id(&body));
    assert_eq!(result_bytes(&rerun), first_result, "same seed must reproduce the same bytes");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pending_jobs_left_in_the_log_rerun_to_completion_on_boot() {
    let dir = temp_dir("pending");
    // Simulate a crash after a job was accepted but before it finished: a `job_submitted`
    // record with no matching `job_finished`. The booting server must re-run it.
    let spec = r#"{"skg": {"theta": {"a": 0.95, "b": 0.55, "c": 0.2}, "k": 7},
                   "params": {"epsilon": 1.0, "delta": 0.01}, "seed": 5}"#;
    {
        let (store, _) = Persistence::open(&dir, 1000).unwrap();
        store.record(
            "job_submitted",
            vec![
                ("job_id", Json::Number(7.0)),
                ("warnings", Json::Array(Vec::new())),
                ("spec", Json::parse(spec).unwrap()),
            ],
            || Json::Object(Vec::new()),
        );
    }
    let handle = start_durable(&dir);
    let addr = handle.addr();
    let replayed = poll_to_done(addr, 7);
    assert!(replayed.contains("\"theta\""), "{replayed}");

    // The re-run is the same pure function of the spec: a fresh submit of the identical
    // request produces byte-identical result bytes.
    let body = r#"{"graph": {"skg": {"theta": {"a": 0.95, "b": 0.55, "c": 0.2}, "k": 7}},
            "params": {"epsilon": 1.0, "delta": 0.01}, "seed": 5}"#;
    let (status, submit) = client::post_json(addr, "/api/v1/estimate", body).unwrap();
    assert_eq!(status, 202, "{submit}");
    let fresh = poll_to_done(addr, submitted_job_id(&submit));
    assert_eq!(result_bytes(&fresh), result_bytes(&replayed));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_exhaustion_answers_429_and_a_refused_draw_spends_nothing() {
    let handle = start_in_memory();
    let addr = handle.addr();
    let (status, body) = create_dataset(addr, "metered", 1.0, 0.05);
    assert_eq!(status, 201, "{body}");

    let (status, body) = client::post_json(
        addr,
        "/api/v1/datasets/metered/estimate",
        r#"{"params": {"epsilon": 0.6, "delta": 0.02}, "seed": 1}"#,
    )
    .unwrap();
    assert_eq!(status, 202, "{body}");
    poll_to_done(addr, submitted_job_id(&body));

    // A draw the remaining (0.4, 0.03) cannot afford is refused with the typed document...
    let (status, body) = client::post_json(
        addr,
        "/api/v1/datasets/metered/estimate",
        r#"{"params": {"epsilon": 0.6, "delta": 0.02}, "seed": 2}"#,
    )
    .unwrap();
    assert_eq!(status, 429, "{body}");
    let refusal = Json::parse(&body).unwrap();
    assert_eq!(refusal.get("code").unwrap().as_str(), Some("budget_exhausted"));
    assert!(refusal.get("remaining_epsilon").unwrap().as_f64().is_some(), "{body}");
    assert!(refusal.get("remaining_delta").unwrap().as_f64().is_some(), "{body}");

    // ...and spends nothing: the ledger still shows only the first debit, and a draw that
    // exactly fits the remainder is accepted.
    let (status, body) = client::get(addr, "/api/v1/datasets/metered/budget").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"epsilon_spent\":0.6"), "{body}");
    let (status, body) = client::post_json(
        addr,
        "/api/v1/datasets/metered/estimate",
        r#"{"params": {"epsilon": 0.4, "delta": 0.02}, "seed": 3}"#,
    )
    .unwrap();
    assert_eq!(status, 202, "a draw equal to the remaining budget must fit: {body}");
    poll_to_done(addr, submitted_job_id(&body));
    handle.shutdown();
}

#[test]
fn a_corrupted_log_tail_is_dropped_on_boot_not_a_crash() {
    use std::io::Write;
    let dir = temp_dir("torn");
    {
        let handle = start_durable(&dir);
        let (status, body) = create_dataset(handle.addr(), "survivor", 1.0, 0.05);
        assert_eq!(status, 201, "{body}");
        handle.shutdown();
    }
    // A torn final record, as a crash mid-append would leave it.
    let mut log = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("records.log"))
        .expect("the record log exists");
    log.write_all(b"{\"record\":\"debit\",\"seq\":9999,\"name\":\"survivor\",\"eps").unwrap();
    drop(log);

    let handle = start_durable(&dir);
    let addr = handle.addr();
    let (status, body) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = client::get(addr, "/api/v1/datasets/survivor/budget").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"epsilon_spent\":0"), "the torn debit must not apply: {body}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_aliases_answer_byte_identically_and_carry_the_deprecation_header() {
    let handle = start_in_memory();
    let addr = handle.addr();
    let body = r#"{"graph": {"skg": {"theta": {"a": 0.95, "b": 0.55, "c": 0.2}, "k": 7}},
                   "params": {"epsilon": 1.0, "delta": 0.01}, "seed": 11}"#;
    let (status, head, legacy_submit) =
        client::request_with_head(addr, "POST", "/api/estimate", Some(body)).unwrap();
    assert_eq!(status, 202, "{legacy_submit}");
    assert!(head.contains("Deprecation: true"), "{head}");
    let id = submitted_job_id(&legacy_submit);
    poll_to_done(addr, id);

    // The same job answers on both spellings with byte-identical bodies; only the legacy
    // spelling is marked deprecated.
    let (status, legacy_head, legacy_poll) =
        client::request_with_head(addr, "GET", &format!("/api/jobs/{id}"), None).unwrap();
    assert_eq!(status, 200, "{legacy_poll}");
    assert!(legacy_head.contains("Deprecation: true"), "{legacy_head}");
    let (status, v1_head, v1_poll) =
        client::request_with_head(addr, "GET", &format!("/api/v1/jobs/{id}"), None).unwrap();
    assert_eq!(status, 200, "{v1_poll}");
    assert!(!v1_head.contains("Deprecation"), "{v1_head}");
    assert_eq!(legacy_poll, v1_poll, "alias bodies must be byte-identical");

    // The alias contract holds on the streaming endpoint too.
    let (status, stream_head, _) =
        client::get_stream(addr, &format!("/api/jobs/{id}/events")).unwrap();
    assert_eq!(status, 200, "{stream_head}");
    assert!(stream_head.contains("Deprecation: true"), "{stream_head}");
    let (status, stream_head, _) =
        client::get_stream(addr, &format!("/api/v1/jobs/{id}/events")).unwrap();
    assert_eq!(status, 200, "{stream_head}");
    assert!(!stream_head.contains("Deprecation"), "{stream_head}");

    // healthz reports the dataset count and, in-memory, a null data_dir — while staying a
    // plain 200 for bare liveness checks.
    let (status, health) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"datasets\":0"), "{health}");
    assert!(health.contains("\"data_dir\":null"), "{health}");
    handle.shutdown();
}
