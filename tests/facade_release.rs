//! The cross-crate facade test required by the offline-build milestone: drive the
//! `release_synthetic_graph` pipeline end-to-end through `kronpriv::prelude` on a small seeded
//! graph, then check the released artifacts — node/edge counts, the `[0, 1]` parameter box, and
//! that the release serializes through the in-workspace JSON layer (the path the bench harness
//! uses for every experiment record).

use kronpriv::prelude::*;
use kronpriv_json::ToJson;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn release_synthetic_graph_end_to_end_on_a_small_seeded_graph() {
    // A small sensitive graph: a 512-node SKG realization (k = 9) plays the part.
    let truth = Initiator2::new(0.95, 0.55, 0.2);
    let mut rng = StdRng::seed_from_u64(7);
    let secret = sample_fast(&truth, 9, &SamplerOptions::default(), &mut rng);
    assert_eq!(secret.node_count(), 512);
    assert!(secret.edge_count() > 0);

    let release = release_synthetic_graph(&secret, PrivacyParams::new(1.0, 0.01), &mut rng);

    // Node count: the synthetic graph lives on the same padded 2^k node set.
    assert_eq!(release.synthetic.node_count(), 512);
    // Edge count: same order of magnitude as the sensitive graph (the private degree release
    // pins down the expected edge count).
    let ratio = release.synthetic.edge_count() as f64 / secret.edge_count() as f64;
    assert!((0.3..=3.0).contains(&ratio), "edge ratio {ratio}");

    // Every released initiator entry stays in [0, 1] and the estimate is canonical.
    let theta = release.estimate.fit.theta;
    for p in theta.as_array() {
        assert!((0.0..=1.0).contains(&p), "theta entry {p} outside [0, 1]");
    }
    assert!(theta.a >= theta.c);

    // The private intermediates the estimate publishes are finite.
    for v in release.estimate.private_statistics {
        assert!(v.is_finite());
    }

    // The whole release record serializes through the JSON layer used by the experiment
    // bookkeeping, and the document round-trips structurally.
    let doc = release.estimate.to_json();
    let text = doc.to_pretty_string();
    // The privacy boundary, at the outermost serialization point: no deny-listed field (the
    // exact triangle count, the raw noisy degree sequence) may appear as a key anywhere in
    // the serialized release, under any nesting. The list is the single shared const that
    // kronpriv-lint also enforces statically.
    for ident in kronpriv_lint::SENSITIVE_IDENTS {
        assert!(
            !text.contains(&format!("\"{ident}\"")),
            "sensitive field `{ident}` leaked into the release JSON"
        );
    }
    let reparsed = kronpriv_json::Json::parse(&text).expect("release JSON reparses");
    let a = reparsed
        .get("fit")
        .and_then(|fit| fit.get("theta"))
        .and_then(|t| t.get("a"))
        .and_then(|v| v.as_f64())
        .expect("fit.theta.a present");
    assert!((a - theta.a).abs() < 1e-15);
}

#[test]
fn release_is_reproducible_from_the_seed() {
    // Same seed, same release — the determinism the paper's experiment scripts rely on.
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let secret =
            sample_fast(&Initiator2::new(0.9, 0.5, 0.2), 9, &SamplerOptions::default(), &mut rng);
        let release = release_synthetic_graph(&secret, PrivacyParams::new(0.5, 0.01), &mut rng);
        (release.estimate.fit.theta, release.synthetic.edge_count())
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43));
}
