//! Live-socket coverage of the observability surface: a slow KronFit job followed over the
//! chunked `/api/jobs/{id}/events` stream, the `warnings` contract for overridden request
//! fields, and the `/healthz` status document — all over real localhost HTTP, fully offline.

use kronpriv_json::Json;
use kronpriv_server::{client, serve, ServerConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn start_server() -> kronpriv_server::ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        job_workers: 1,
        ..ServerConfig::default()
    })
    .expect("server must bind an ephemeral localhost port")
}

/// A KronFit request sized to run for a noticeable moment on the single estimation worker —
/// long enough that the event stream demonstrably attaches while the job is still running.
fn slow_kronfit_body(seed: u64, compute_threads: usize) -> String {
    format!(
        r#"{{"graph": {{"skg": {{"theta": {{"a": 0.95, "b": 0.55, "c": 0.2}}, "k": 8}}}},
            "estimator": "kronfit", "seed": {seed},
            "kronfit": {{"gradient_steps": 8, "warmup_swaps": 1500, "samples_per_step": 2,
                         "swaps_between_samples": 400, "learning_rate": 0.06,
                         "min_parameter": 0.001, "initial": {{"a": 0.9, "b": 0.6, "c": 0.2}},
                         "chains": 2, "compute_threads": {compute_threads}}}}}"#
    )
}

fn poll_to_done(addr: SocketAddr, job_id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) =
            client::get(addr, &format!("/api/jobs/{job_id}")).expect("poll must succeed");
        assert_eq!(status, 200, "{body}");
        let poll = Json::parse(&body).expect("poll body is JSON");
        match poll.get("status").and_then(|s| s.as_str()).expect("poll has a status string") {
            "Done" => return poll,
            "Failed" => panic!("job {job_id} failed: {body}"),
            _ => {
                assert!(Instant::now() < deadline, "job {job_id} never finished");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// The tentpole scenario: submit a slow KronFit job, attach to its event stream over a live
/// socket while it runs, and verify the typed document sequence — `queued` first, monotone
/// per-chain progress with finite log-likelihoods in between, and a terminal `done` whose
/// embedded result matches the poll endpoint byte for byte.
#[test]
fn kronfit_event_stream_follows_the_job_from_queued_to_done() {
    let handle = start_server();
    let addr = handle.addr();
    let (status, submitted) =
        client::post_json(addr, "/api/estimate", &slow_kronfit_body(17, 0)).unwrap();
    assert_eq!(status, 202, "{submitted}");
    let job_id = Json::parse(&submitted).unwrap().get("job_id").unwrap().as_f64().unwrap() as u64;

    // Attach immediately: the single estimation worker is still on (or has barely started)
    // the job, so the stream follows it live rather than replaying a finished log.
    let attach = Instant::now();
    let (status, head, stream) =
        client::get_stream(addr, &format!("/api/jobs/{job_id}/events")).unwrap();
    assert_eq!(status, 200, "{head}");
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    assert!(head.contains("Content-Type: application/x-ndjson"), "{head}");
    let followed_for = attach.elapsed();

    let events: Vec<Json> = stream
        .lines()
        .map(|line| Json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON line {line:?}: {e}")))
        .collect();
    let kinds: Vec<&str> =
        events.iter().map(|e| e.get("event").unwrap().as_str().unwrap()).collect();
    assert_eq!(kinds.first(), Some(&"queued"), "{kinds:?}");
    assert_eq!(kinds.last(), Some(&"done"), "{kinds:?}");
    assert!(kinds.contains(&"running"), "{kinds:?}");

    // The kronfit stage brackets all chain progress.
    let started = kinds.iter().position(|k| *k == "stage_started").expect("stage_started");
    assert_eq!(events[started].get("stage").unwrap().as_str(), Some("kronfit"));
    let finished = kinds.iter().rposition(|k| *k == "stage_finished").expect("stage_finished");
    let steps: Vec<usize> =
        kinds.iter().enumerate().filter(|(_, k)| **k == "chain_step").map(|(i, _)| i).collect();
    assert!(!steps.is_empty(), "no chain progress streamed: {kinds:?}");
    assert!(started < steps[0] && *steps.last().unwrap() < finished, "{kinds:?}");

    // Per chain: steps 0..total_steps in order, each with a finite log-likelihood (the
    // streaming sink opts into the likelihood probe).
    let mut per_chain: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    for index in steps {
        let event = &events[index];
        assert_eq!(event.get("total_steps").unwrap().as_f64(), Some(8.0));
        let ll = event.get("log_likelihood").unwrap().as_f64().expect("finite log-likelihood");
        assert!(ll.is_finite(), "{event:?}");
        per_chain
            .entry(event.get("chain").unwrap().as_f64().unwrap() as u64)
            .or_default()
            .push(event.get("step").unwrap().as_f64().unwrap() as u64);
    }
    assert_eq!(per_chain.len(), 2, "both chains must report");
    for (chain, steps) in &per_chain {
        assert_eq!(steps, &(0..8).collect::<Vec<u64>>(), "chain {chain} progress {steps:?}");
    }

    // The terminal event embeds the same result document the poll endpoint serves.
    let done = events.last().unwrap();
    let poll = poll_to_done(addr, job_id);
    assert_eq!(
        done.get("result").unwrap().to_compact_string(),
        poll.get("result").unwrap().to_compact_string(),
        "streamed terminal result must match the fetched one"
    );

    // Sanity that this was a follow, not an instant replay: the job takes real time, and the
    // stream stayed open for (at least most of) it.
    assert!(
        followed_for > Duration::from_millis(50),
        "stream closed after {followed_for:?} — job too fast to demonstrate following?"
    );
    handle.shutdown();
}

/// Failed jobs stream a terminal `failed` document carrying the poll endpoint's error.
#[test]
fn failed_jobs_stream_a_terminal_failed_event() {
    let handle = start_server();
    let addr = handle.addr();
    let body = r#"{"graph": {"edge_list": "0 0\n"},
                   "params": {"epsilon": 1.0, "delta": 0.01}, "seed": 1}"#;
    let (status, submitted) = client::post_json(addr, "/api/estimate", body).unwrap();
    assert_eq!(status, 202, "{submitted}");
    let job_id = Json::parse(&submitted).unwrap().get("job_id").unwrap().as_f64().unwrap() as u64;
    let (status, _, stream) =
        client::get_stream(addr, &format!("/api/jobs/{job_id}/events")).unwrap();
    assert_eq!(status, 200);
    let last = Json::parse(stream.lines().last().unwrap()).unwrap();
    assert_eq!(last.get("event").unwrap().as_str(), Some("failed"));
    let message = last.get("error").unwrap().as_str().unwrap();
    assert!(message.contains("empty"), "{message}");
    handle.shutdown();
}

/// The `compute_threads` override contract over live HTTP: a mismatching request value is
/// accepted but answered with an explicit warning, on the submit response and on every poll.
#[test]
fn overridden_compute_threads_warn_on_submit_and_poll() {
    let handle = start_server();
    let addr = handle.addr();
    // 1789 threads will never match a real pool.
    let (status, submitted) =
        client::post_json(addr, "/api/estimate", &slow_kronfit_body(3, 1789)).unwrap();
    assert_eq!(status, 202, "{submitted}");
    let submit = Json::parse(&submitted).unwrap();
    let warnings = submit.get("warnings").unwrap().as_array().expect("warnings array");
    assert_eq!(warnings.len(), 1, "{submitted}");
    let text = warnings[0].as_str().unwrap();
    assert!(text.contains("kronfit.compute_threads=1789"), "{text}");
    assert!(text.contains("ignored"), "{text}");

    let job_id = submit.get("job_id").unwrap().as_f64().unwrap() as u64;
    let poll = poll_to_done(addr, job_id);
    let echoed = poll.get("warnings").unwrap().as_array().expect("warnings echoed");
    assert_eq!(echoed[0].as_str().unwrap(), text, "poll must echo the submission warnings");
    handle.shutdown();
}

/// `/healthz` stays a 200 (the bare liveness contract) while carrying the status document:
/// uptime, compute pool size, and job lifecycle counts that actually move.
#[test]
fn healthz_serves_the_status_document() {
    let handle = start_server();
    let addr = handle.addr();
    let (status, body) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200, "{body}");
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert!(health.get("uptime_seconds").unwrap().as_f64().unwrap() >= 0.0);
    assert!(health.get("compute_threads").unwrap().as_f64().unwrap() >= 1.0);
    assert_eq!(health.get("jobs_done").unwrap().as_f64(), Some(0.0));

    let (status, submitted) =
        client::post_json(addr, "/api/estimate", &slow_kronfit_body(5, 0)).unwrap();
    assert_eq!(status, 202, "{submitted}");
    let job_id = Json::parse(&submitted).unwrap().get("job_id").unwrap().as_f64().unwrap() as u64;
    poll_to_done(addr, job_id);
    let (_, body) = client::get(addr, "/healthz").unwrap();
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("jobs_submitted").unwrap().as_f64(), Some(1.0), "{body}");
    assert_eq!(health.get("jobs_done").unwrap().as_f64(), Some(1.0), "{body}");
    assert_eq!(health.get("jobs_failed").unwrap().as_f64(), Some(0.0), "{body}");
    handle.shutdown();
}

/// `/metrics` over a live socket is well-formed Prometheus text and reflects served traffic.
#[test]
fn metrics_scrape_is_well_formed_and_reflects_traffic() {
    let handle = start_server();
    let addr = handle.addr();
    client::get(addr, "/healthz").unwrap();
    let (status, body) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains(
            "kronpriv_http_requests_total{method=\"GET\",path=\"/healthz\",status=\"200\"}"
        ),
        "{body}"
    );
    for line in body.lines() {
        assert!(
            kronpriv::kronpriv_obs::well_formed_exposition_line(line),
            "malformed exposition line: {line:?}"
        );
    }
    handle.shutdown();
}
