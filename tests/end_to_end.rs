//! Cross-crate integration tests: the full Algorithm 1 pipeline from a sensitive graph to a
//! published synthetic graph, exercised through the public facade exactly as a downstream user
//! would.

use kronpriv::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sensitive_graph(k: u32, seed: u64) -> (Initiator2, Graph) {
    let truth = Initiator2::new(0.99, 0.45, 0.25);
    let mut rng = StdRng::seed_from_u64(seed);
    (truth, sample_fast(&truth, k, &SamplerOptions::default(), &mut rng))
}

#[test]
fn private_release_pipeline_produces_a_plausible_synthetic_graph() {
    let (_, graph) = sensitive_graph(12, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let release = release_synthetic_graph(&graph, PrivacyParams::new(0.5, 0.01), &mut rng);

    // The synthetic graph has the padded node count and a comparable edge budget.
    assert_eq!(release.synthetic.node_count(), 4096);
    let edge_ratio = release.synthetic.edge_count() as f64 / graph.edge_count() as f64;
    assert!((0.4..=2.0).contains(&edge_ratio), "edge ratio {edge_ratio}");

    // The published estimate is canonical and inside the parameter box.
    let theta = release.estimate.fit.theta;
    assert!(theta.a >= theta.c);
    for p in theta.as_array() {
        assert!((0.0..=1.0).contains(&p));
    }
}

#[test]
fn private_estimate_tracks_kronmom_at_the_papers_budget() {
    // The paper's central empirical claim (Table 1): at ε = 0.2, δ = 0.01 the private estimator
    // lands close to the non-private moment estimator. On an SKG-generated graph the triangle
    // count is tiny (the model's clustering deficit), so the released Δ̃ carries no signal and
    // the degree-derived moments pin down only the initiator *row sums* (a + b) and (b + c) —
    // the quantities that determine the degree distribution. The reproducible claim at this
    // budget is therefore row-sum agreement; EXPERIMENTS.md discusses the full-parameter gap and
    // how it closes on triangle-rich (real) networks or larger budgets.
    let (_, graph) = sensitive_graph(13, 3);
    let kronmom = KronMomEstimator::default().fit_graph(&graph);
    // The gap is a random variable of the Laplace noise draw; at this tight budget its tail
    // reaches ~0.08 on unlucky seeds. Assert the *typical* (median over five seeds) agreement
    // tightly and every individual draw loosely, so the test checks the claim rather than one
    // noise realization.
    let mut gaps = Vec::new();
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let private =
            PrivateEstimator::default().fit(&graph, PrivacyParams::paper_default(), &mut rng);
        let theta = private.fit.theta;
        let row_sum_gap = ((theta.a + theta.b) - (kronmom.theta.a + kronmom.theta.b))
            .abs()
            .max(((theta.b + theta.c) - (kronmom.theta.b + kronmom.theta.c)).abs());
        assert!(
            row_sum_gap < 0.12,
            "seed {seed}: row-sum gap {row_sum_gap:.3}; private {:?} vs kronmom {:?}",
            theta,
            kronmom.theta
        );
        gaps.push(row_sum_gap);
    }
    gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(gaps[gaps.len() / 2] < 0.06, "median row-sum gap too large: {gaps:?}");
    // With a more generous budget the full parameter vector is pinned down as well.
    let mut rng = StdRng::seed_from_u64(500);
    let generous = PrivateEstimator::default().fit(&graph, PrivacyParams::new(1.0, 0.01), &mut rng);
    assert!(
        generous.fit.theta.distance(&kronmom.theta) < 0.1,
        "ε=1 estimate {:?} vs kronmom {:?}",
        generous.fit.theta,
        kronmom.theta
    );
}

#[test]
fn larger_budgets_never_hurt_utility_substantially() {
    let (_, graph) = sensitive_graph(12, 4);
    let kronmom = KronMomEstimator::default().fit_graph(&graph);
    let distance_at = |epsilon: f64| {
        let reps = 3;
        let mut total = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(200 + seed);
            let est = PrivateEstimator::default().fit(
                &graph,
                PrivacyParams::new(epsilon, 0.01),
                &mut rng,
            );
            total += est.fit.theta.distance(&kronmom.theta);
        }
        total / reps as f64
    };
    let tight = distance_at(0.05);
    let generous = distance_at(5.0);
    assert!(
        generous <= tight + 0.02,
        "utility should not degrade with more budget: ε=5 gives {generous}, ε=0.05 gives {tight}"
    );
}

#[test]
fn degree_statistics_of_the_synthetic_graph_mimic_the_original() {
    let (_, graph) = sensitive_graph(12, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let release = release_synthetic_graph(&graph, PrivacyParams::new(1.0, 0.01), &mut rng);

    let options = ProfileOptions { scree_values: 10, network_values: 50, skip_hop_plot: true };
    let original = GraphProfile::compute("original", &graph, &options, &mut rng);
    let synthetic = GraphProfile::compute("synthetic", &release.synthetic, &options, &mut rng);
    let cmp = ProfileComparison::between(&original, &graph, &synthetic, &release.synthetic);

    assert!(cmp.edge_count_relative_error < 0.5, "{cmp:?}");
    assert!(cmp.degree_distribution_distance < 0.25, "{cmp:?}");
    assert!(cmp.leading_singular_value_relative_error < 0.5, "{cmp:?}");
}

#[test]
fn all_three_estimators_agree_on_a_well_specified_model() {
    // On data actually generated by the model, all three estimators should land in the same
    // region of parameter space (Table 1's synthetic row).
    let (truth, graph) = sensitive_graph(12, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let suite = estimate_with_all_estimators(
        &graph,
        PrivacyParams::new(1.0, 0.01),
        &KronFitOptions {
            gradient_steps: 30,
            warmup_swaps: 5_000,
            samples_per_step: 2,
            swaps_between_samples: 1_000,
            ..Default::default()
        },
        &KronMomOptions::default(),
        &PrivateEstimatorOptions::default(),
        &mut rng,
    );
    assert!(suite.kronmom.theta.distance(&truth) < 0.1, "kronmom {:?}", suite.kronmom.theta);
    assert!(
        suite.private.fit.theta.distance(&truth) < 0.15,
        "private {:?}",
        suite.private.fit.theta
    );
    assert!(suite.kronfit.theta.distance(&truth) < 0.25, "kronfit {:?}", suite.kronfit.theta);
}

#[test]
fn dataset_standins_flow_through_the_full_pipeline() {
    // Smallest real-network stand-in through the whole pipeline, as the bench harness does.
    let graph = Dataset::CaGrQc.generate(9);
    let mut rng = StdRng::seed_from_u64(10);
    let est = PrivateEstimator::default().fit(&graph, PrivacyParams::paper_default(), &mut rng);
    // The paper's fits for CA-GrQc sit at a ≈ 1.0, b ≈ 0.46, c ≈ 0.28-0.29 and the stand-in was
    // generated from exactly that region. At ε = 0.2 on the (triangle-poor) stand-in the
    // identifiable quantities are the row sums — see EXPERIMENTS.md — so that is what the
    // estimate must come back to.
    let paper = Dataset::CaGrQc.table1_row().private;
    let theta = est.fit.theta;
    let row_sum_gap = ((theta.a + theta.b) - (paper.a + paper.b))
        .abs()
        .max(((theta.b + theta.c) - (paper.b + paper.c)).abs());
    assert!(
        row_sum_gap < 0.08,
        "estimate {:?} vs paper {:?} (row-sum gap {row_sum_gap:.3})",
        theta,
        paper
    );
}
