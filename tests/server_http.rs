//! End-to-end test of `kronpriv-server` over live HTTP on localhost: concurrent clients submit
//! private-release jobs against a small worker pool, poll them to completion, and verify both
//! the DP results and the byte-level reproducibility guarantee — fully offline.

use kronpriv_json::Json;
use kronpriv_server::{client, serve, ServerConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn start_server() -> kronpriv_server::ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        job_workers: 2,
        ..ServerConfig::default()
    })
    .expect("server must bind an ephemeral localhost port")
}

fn estimate_body(seed: u64, epsilon: f64) -> String {
    format!(
        r#"{{"graph": {{"skg": {{"theta": {{"a": 0.95, "b": 0.55, "c": 0.2}}, "k": 8}}}},
            "params": {{"epsilon": {epsilon}, "delta": 0.01}},
            "seed": {seed}}}"#
    )
}

/// Submits an estimate job and polls it until it is `Done`, returning the raw poll body (for
/// byte-level comparisons) and its parsed form.
fn run_job_to_done(addr: SocketAddr, body: &str) -> (String, Json) {
    let (status, submit_body) =
        client::post_json(addr, "/api/estimate", body).expect("submit must succeed");
    assert_eq!(status, 202, "submit response: {submit_body}");
    let submit = Json::parse(&submit_body).expect("submit body is JSON");
    assert_eq!(submit.get("status").expect("submit has status").as_str(), Some("Queued"));
    let job_id =
        submit.get("job_id").expect("submit has job_id").as_f64().expect("job_id is a number")
            as u64;

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, poll_body) =
            client::get(addr, &format!("/api/jobs/{job_id}")).expect("poll must succeed");
        assert_eq!(status, 200, "poll response: {poll_body}");
        let poll = Json::parse(&poll_body).expect("poll body is JSON");
        match poll.get("status").and_then(|s| s.as_str()).expect("poll has a status string") {
            "Done" => return (poll_body, poll),
            "Failed" => panic!("job {job_id} failed: {poll_body}"),
            _ => {
                assert!(Instant::now() < deadline, "job {job_id} never finished");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn assert_valid_release(result: &Json, expected_epsilon: f64) {
    let params = result.get("params").expect("result has params");
    assert_eq!(params.get("epsilon").expect("params has epsilon").as_f64(), Some(expected_epsilon));
    assert_eq!(params.get("delta").expect("params has delta").as_f64(), Some(0.01));
    let theta = result.get("theta").expect("result has theta");
    let entry =
        |name: &str| theta.get(name).and_then(|v| v.as_f64()).expect("theta entries are numbers");
    let (a, b, c) = (entry("a"), entry("b"), entry("c"));
    for p in [a, b, c] {
        assert!((0.0..=1.0).contains(&p), "initiator entry {p} out of range");
    }
    assert!(a >= c, "canonical form violated: a={a} c={c}");
    let stats = result
        .get("private_statistics")
        .and_then(|s| s.as_array())
        .expect("result has the private-statistics array");
    assert_eq!(stats.len(), 4);
    for s in stats {
        let v = s.as_f64().expect("private statistics are numbers");
        assert!(v.is_finite() && v >= 0.0, "private statistic {v}");
    }
    // The privacy boundary: no deny-listed field (the same shared const kronpriv-lint
    // enforces statically) may appear on the wire.
    let triangle = result.get("triangle_release").expect("result has triangle_release");
    for ident in kronpriv_lint::SENSITIVE_IDENTS {
        assert!(triangle.get(ident).is_none(), "sensitive field `{ident}` leaked");
        assert!(result.get(ident).is_none(), "sensitive field `{ident}` leaked");
    }
    assert!(triangle.get("value").expect("release has value").as_f64().is_some());
}

/// The acceptance scenario: 4 concurrent clients against an HTTP pool of 2 (and 2 estimation
/// workers), each submitting its own private-release job over a live socket. All four must
/// receive valid `(ε, δ)`-DP estimates.
#[test]
fn four_concurrent_clients_get_valid_releases_from_a_pool_of_two() {
    let handle = start_server();
    let addr = handle.addr();
    let clients: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let epsilon = 0.5 + 0.5 * i as f64;
                let (_, poll) = run_job_to_done(addr, &estimate_body(1000 + i, epsilon));
                (poll, epsilon)
            })
        })
        .collect();
    for client_thread in clients {
        let (poll, epsilon) = client_thread.join().expect("client thread must not panic");
        let result = poll.get("result").expect("done job carries its result");
        assert_valid_release(result, epsilon);
    }
    // All four jobs went through the one shared store.
    let (_, health) = client::get(addr, "/healthz").unwrap();
    let health = Json::parse(&health).unwrap();
    assert_eq!(health.get("jobs_submitted").unwrap().as_f64(), Some(4.0));
    handle.shutdown();
}

/// Identical seeds must yield byte-identical JSON result documents over the wire — the paper's
/// reproducibility, preserved through the network layer.
#[test]
fn identical_seeds_give_byte_identical_results_over_http() {
    let handle = start_server();
    let addr = handle.addr();
    let body = estimate_body(42, 1.0);
    let (_, first_poll) = run_job_to_done(addr, &body);
    let (_, second_poll) = run_job_to_done(addr, &body);
    let first = first_poll.get("result").unwrap().to_compact_string();
    let second = second_poll.get("result").unwrap().to_compact_string();
    assert_eq!(first, second, "same seed must reproduce the same release byte for byte");

    // A different seed produces different noise (overwhelmingly likely to change the bytes).
    let (_, other_poll) = run_job_to_done(addr, &estimate_body(43, 1.0));
    let other = other_poll.get("result").unwrap().to_compact_string();
    assert_ne!(first, other, "different seeds should not collide");
    handle.shutdown();
}

/// An uploaded SNAP edge list goes through the streaming parser and comes back as a release.
#[test]
fn edge_list_upload_round_trips_through_the_pipeline() {
    let handle = start_server();
    let addr = handle.addr();
    // Build a two-community graph with plenty of wedges and triangles.
    let mut edges = String::from("# two communities\n");
    for i in 0u32..60 {
        edges.push_str(&format!("{} {}\n", i, (i + 1) % 60));
        edges.push_str(&format!("{} {}\n", i, (i + 2) % 60));
        if i % 3 == 0 {
            edges.push_str(&format!("{} {}\n", i, (i + 30) % 60));
        }
    }
    let body = format!(
        r#"{{"graph": {{"edge_list": {}}},
            "params": {{"epsilon": 2.0, "delta": 0.05}},
            "seed": 7, "include_degree_sequence": true}}"#,
        kronpriv_json::to_string(&edges)
    );
    let (_, poll) = run_job_to_done(addr, &body);
    let result = poll.get("result").unwrap();
    let degrees = result.get("degree_sequence").unwrap().as_array().unwrap();
    assert_eq!(degrees.len(), 60, "one released degree per node");
    // The raw noisy (pre-postprocessing) sequence stays server-side, along with every other
    // deny-listed field.
    for ident in kronpriv_lint::SENSITIVE_IDENTS {
        assert!(result.get(ident).is_none(), "sensitive field `{ident}` leaked");
    }
    handle.shutdown();
}

/// Malformed bodies and bad parameters are 400s; unknown jobs and routes are 404s.
#[test]
fn protocol_errors_map_to_4xx_over_live_http() {
    let handle = start_server();
    let addr = handle.addr();
    let (status, body) = client::post_json(addr, "/api/estimate", "{not json").unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(Json::parse(&body).unwrap().get("error").is_some());

    let (status, body) = client::post_json(
        addr,
        "/api/estimate",
        r#"{"graph": {"skg": {"theta": {"a": 0.9, "b": 0.5, "c": 0.2}, "k": 8}},
            "params": {"epsilon": 0.0, "delta": 0.01}, "seed": 1}"#,
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("epsilon must be positive"), "{body}");

    let (status, _) = client::get(addr, "/api/jobs/123456").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::get(addr, "/api/estimate").unwrap();
    assert_eq!(status, 405);
    let (status, _) = client::get(addr, "/no/such/route").unwrap();
    assert_eq!(status, 404);
    handle.shutdown();
}

/// The estimator selector over live HTTP: `"kronfit"` and `"kronmom"` return baseline (non-
/// private) documents, and omitting the field keeps today's private wire behaviour byte for
/// byte.
#[test]
fn estimator_selector_serves_all_three_table1_columns() {
    let handle = start_server();
    let addr = handle.addr();
    let baseline_body = |estimator: &str| {
        format!(
            r#"{{"graph": {{"skg": {{"theta": {{"a": 0.95, "b": 0.55, "c": 0.2}}, "k": 7}}}},
                "estimator": "{estimator}", "seed": 21,
                "kronfit": {{"gradient_steps": 6, "warmup_swaps": 400, "samples_per_step": 2,
                             "swaps_between_samples": 100, "learning_rate": 0.06,
                             "min_parameter": 0.001,
                             "initial": {{"a": 0.9, "b": 0.6, "c": 0.2}}, "chains": 2}}}}"#
        )
    };
    for estimator in ["kronfit", "kronmom"] {
        let (_, poll) = run_job_to_done(addr, &baseline_body(estimator));
        let result = poll.get("result").expect("done job carries its result");
        assert_eq!(result.get("estimator").unwrap().as_str(), Some(estimator));
        let theta = result.get("theta").unwrap();
        let a = theta.get("a").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&a));
        // Baseline documents carry no privacy fields a client could mistake for a release.
        assert!(result.get("params").is_none(), "{estimator} leaked params");
        assert!(result.get("private_statistics").is_none());
        assert!(result.get("triangle_release").is_none());
    }

    // Omitted vs explicit `"estimator": "private"`: byte-identical result documents.
    let implicit = estimate_body(42, 1.0);
    let explicit = implicit.replace("\"seed\": 42", "\"estimator\": \"private\", \"seed\": 42");
    let (_, implicit_poll) = run_job_to_done(addr, &implicit);
    let (_, explicit_poll) = run_job_to_done(addr, &explicit);
    assert_eq!(
        implicit_poll.get("result").unwrap().to_compact_string(),
        explicit_poll.get("result").unwrap().to_compact_string(),
        "the estimator default must preserve the pre-selector wire behaviour"
    );

    // Unknown estimators are 400s, not jobs.
    let bad = implicit.replace("\"seed\": 42", "\"estimator\": \"mle\", \"seed\": 42");
    let (status, body) = client::post_json(addr, "/api/estimate", &bad).unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown estimator"), "{body}");
    handle.shutdown();
}

/// `/api/sample` serves synthetic graphs synchronously and deterministically.
#[test]
fn sampling_is_synchronous_and_seed_deterministic() {
    let handle = start_server();
    let addr = handle.addr();
    let body = r#"{"theta": {"a": 0.95, "b": 0.55, "c": 0.2}, "k": 8, "seed": 9}"#;
    let (status, first) = client::post_json(addr, "/api/sample", body).unwrap();
    assert_eq!(status, 200, "{first}");
    let doc = Json::parse(&first).unwrap();
    assert_eq!(doc.get("nodes").unwrap().as_f64(), Some(256.0));
    assert!(doc.get("edges").unwrap().as_f64().unwrap() > 0.0);
    let (_, second) = client::post_json(addr, "/api/sample", body).unwrap();
    assert_eq!(first, second, "sampling must be a pure function of the request");
    handle.shutdown();
}
