//! The determinism contract of the parallel compute layer, enforced end to end: every
//! parallelized kernel must return **byte-identical** results for 1, 2 and 8 compute threads on
//! realistic graphs (seeded stochastic Kronecker realizations and preferential-attachment
//! graphs), and the O(n)-memory local-sensitivity kernel must agree with the quadratic
//! reference on the hub-heavy shapes that used to blow up the wedge-pair HashMap.

use kronpriv::prelude::*;
use kronpriv_dp::{
    smooth_sensitivity_triangles, smooth_sensitivity_triangles_par, triangle_local_sensitivity,
    triangle_local_sensitivity_par,
};
use kronpriv_graph::counts::{
    max_common_neighbors, per_node_triangles, per_node_triangles_par, triangle_count,
    triangle_count_par,
};
use kronpriv_graph::generators::preferential_attachment;
use kronpriv_par::Executor;
use kronpriv_stats::{
    approximate_hop_plot, approximate_hop_plot_par, exact_hop_plot, exact_hop_plot_par,
    HopPlotOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The two graph families the paper models: a seeded SKG realization (core–periphery, heavy
/// tail) and a preferential-attachment graph (power-law hubs).
fn test_graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(0xDE_7001);
    let skg =
        sample_fast(&Initiator2::new(0.99, 0.45, 0.25), 10, &SamplerOptions::default(), &mut rng);
    let mut rng = StdRng::seed_from_u64(0xDE_7002);
    let pa = preferential_attachment(1200, 4, &mut rng);
    vec![("skg_k10", skg), ("pref_attach_1200", pa)]
}

#[test]
fn triangle_counts_are_identical_for_all_thread_counts() {
    for (name, g) in test_graphs() {
        let count = triangle_count(&g);
        let per_node = per_node_triangles(&g);
        assert!(count > 0, "{name}: want a non-trivial graph");
        for threads in THREAD_COUNTS {
            let exec = Executor::new(threads);
            assert_eq!(triangle_count_par(&g, &exec), count, "{name} threads {threads}");
            assert_eq!(per_node_triangles_par(&g, &exec), per_node, "{name} threads {threads}");
        }
    }
}

#[test]
fn smooth_sensitivity_is_bit_identical_for_all_thread_counts() {
    for (name, g) in test_graphs() {
        for beta in [0.01, 0.2] {
            let reference = smooth_sensitivity_triangles(&g, beta);
            assert!(reference > 0.0, "{name}: smooth sensitivity must be positive");
            for threads in THREAD_COUNTS {
                let exec = Executor::new(threads);
                assert_eq!(
                    smooth_sensitivity_triangles_par(&g, beta, &exec).to_bits(),
                    reference.to_bits(),
                    "{name} beta {beta} threads {threads}"
                );
            }
        }
    }
}

#[test]
fn hop_plots_are_identical_for_all_thread_counts() {
    for (name, g) in test_graphs() {
        let exact = exact_hop_plot(&g);
        let options = HopPlotOptions { sketches: 16, max_hops: 24 };
        let approx = approximate_hop_plot(&g, &options, &mut StdRng::seed_from_u64(7));
        for threads in THREAD_COUNTS {
            let exec = Executor::new(threads);
            assert_eq!(exact_hop_plot_par(&g, &exec), exact, "{name} threads {threads}");
            let approx_par =
                approximate_hop_plot_par(&g, &options, &mut StdRng::seed_from_u64(7), &exec);
            assert_eq!(approx_par.len(), approx.len(), "{name} threads {threads}");
            for (a, b) in approx_par.iter().zip(&approx) {
                assert_eq!(a.to_bits(), b.to_bits(), "{name} threads {threads}");
            }
        }
    }
}

#[test]
fn full_private_estimate_is_invariant_under_the_thread_knob() {
    // End to end: the estimate the server publishes must not depend on compute_threads.
    let (_, g) = &test_graphs()[0];
    let fit = |threads: usize| {
        let options = PrivateEstimatorOptions { compute_threads: threads, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(0xDE_7003);
        try_private_estimate(g, PrivacyParams::paper_default(), &options, &mut rng).unwrap()
    };
    let reference = fit(1);
    for threads in [2usize, 8] {
        let est = fit(threads);
        assert_eq!(est.fit.theta, reference.fit.theta, "threads {threads}");
        assert_eq!(est.private_statistics, reference.private_statistics, "threads {threads}");
    }
}

/// A hub of degree `mids · (leaves + 1)`: the old wedge-pair HashMap needed one entry per pair
/// of hub neighbours — `O(d_hub²)` ≈ 7.5M entries here — where the counter/marker kernel needs
/// `threads × O(n)` with `n` < 4000. The value is pinned both against the closed form and, on a
/// smaller instance, against the quadratic all-pairs reference.
#[test]
fn hub_heavy_local_sensitivity_runs_in_linear_memory_and_matches_the_reference() {
    let star_of_stars = |mids: u32, leaves: u32| {
        let n = 1 + mids as usize + (mids * leaves) as usize;
        let mut edges = Vec::new();
        let mut next = mids + 1;
        for mid in 1..=mids {
            edges.push((0, mid));
            for _ in 0..leaves {
                edges.push((mid, next));
                edges.push((0, next));
                next += 1;
            }
        }
        Graph::from_edges(n, edges)
    };

    // Small instance: the quadratic reference is affordable, pin exact agreement.
    let small = star_of_stars(12, 8);
    assert_eq!(triangle_local_sensitivity(&small), max_common_neighbors(&small));
    assert_eq!(triangle_local_sensitivity(&small), 8);

    // Hub-heavy instance: hub degree 3'875 ⇒ ~7.5M wedge pairs through the hub alone. The
    // O(n) kernel must handle it instantly at every thread count with the closed-form answer.
    let big = star_of_stars(125, 30);
    assert_eq!(big.degree(0), 3875);
    for threads in THREAD_COUNTS {
        let exec = Executor::new(threads);
        assert_eq!(triangle_local_sensitivity_par(&big, &exec), 30, "threads {threads}");
    }
}
